"""Per-VPN protocol history: the `repro chaos dump` backend.

:class:`~repro.faults.history.ProtocolHistory` must index existing
protocol emission sites by page without changing what the base recorder
stores (golden traces are byte-compared), pick the right page out of an
auditor violation list, and render a readable table.
"""

from repro.config import InvalidationScheme, baseline_config
from repro.faults.auditor import audit_system
from repro.faults.history import (
    PROTOCOL_PREFIXES,
    ProtocolHistory,
    first_violating_vpn,
    format_history,
)
from repro.experiments.runner import build_app_workload
from repro.gpu.system import MultiGPUSystem


def _workload(app, config, *, lanes, accesses_per_lane, seed):
    return build_app_workload(
        app,
        num_gpus=config.num_gpus,
        page_size=config.page_size,
        scale=1.0,
        lanes=lanes,
        accesses_per_lane=accesses_per_lane,
        seed=seed,
    )


class TestIndexing:
    def test_protocol_events_indexed_by_vpn(self):
        history = ProtocolHistory()
        history.emit("inval.send", "gpu0.dir", 0x10, iseq=1)
        history.emit("mig.start", "gmmu", 0x10, dst=1)
        history.emit("inval.send", "gpu0.dir", 0x20, iseq=2)
        assert history.vpns() == [0x10, 0x20]
        events = [rec.event for rec in history.history(0x10)]
        assert events == ["inval.send", "mig.start"]

    def test_non_protocol_events_not_indexed(self):
        history = ProtocolHistory()
        history.emit("tlb.hit", "gpu0.l1tlb", 0x10)
        history.emit("walk.done", "gpu0.walker", 0x10)
        assert history.vpns() == []
        # ...but they still land in the base ring buffer untouched.
        assert [rec.event for rec in history.records()] == [
            "tlb.hit", "walk.done",
        ]

    def test_vpnless_protocol_events_not_indexed(self):
        history = ProtocolHistory()
        history.emit("inval.degrade", "gpu0.dir", None, reason="storm")
        assert history.vpns() == []

    def test_per_vpn_bound_drops_oldest(self):
        history = ProtocolHistory(per_vpn=4)
        for iseq in range(10):
            history.emit("inval.send", "gpu0.dir", 0x10, iseq=iseq)
        kept = [dict(rec.fields)["iseq"] for rec in history.history(0x10)]
        assert kept == [6, 7, 8, 9]

    def test_clear_resets_index(self):
        history = ProtocolHistory()
        history.emit("inval.send", "gpu0.dir", 0x10, iseq=1)
        history.clear()
        assert history.vpns() == []
        assert history.history(0x10) == []

    def test_matches_base_recorder_stream(self):
        """Same (config, seed) traced with the plain recorder and with
        ProtocolHistory must yield identical record streams — the
        index is an overlay, never a behaviour change."""
        from repro.sim.trace import TraceRecorder

        config = baseline_config(2).with_scheme(InvalidationScheme.IDYLL)
        workload = _workload("PR", config, lanes=2, accesses_per_lane=80, seed=3)
        base = TraceRecorder()
        system = MultiGPUSystem(config, seed=3, tracer=base)
        system.run(workload)
        overlay = ProtocolHistory()
        system2 = MultiGPUSystem(config, seed=3, tracer=overlay)
        system2.run(workload)
        want = [rec.to_line() for rec in base.records()]
        have = [rec.to_line() for rec in overlay.records()]
        assert have == want
        assert overlay.vpns(), "a real run emitted no protocol events"
        for vpn in overlay.vpns():
            for rec in overlay.history(vpn):
                assert rec.event.startswith(PROTOCOL_PREFIXES)
                assert rec.vpn == vpn


class TestFirstViolatingVpn:
    def test_picks_first_vpn_of_first_violation(self):
        violations = [
            "gpu1 TLB holds stale mapping for vpn=0xa80006 (expected vpn=0x1)",
            "directory leak at vpn=0x2",
        ]
        assert first_violating_vpn(violations) == 0xA80006

    def test_skips_violations_without_vpn(self):
        violations = ["protocol counter mismatch", "leak at vpn=0x2"]
        assert first_violating_vpn(violations) == 0x2

    def test_none_when_no_vpn_anywhere(self):
        assert first_violating_vpn(["counter mismatch"]) is None
        assert first_violating_vpn([]) is None


class TestAuditorIntegration:
    def test_audit_system_records_last_violations(self):
        config = baseline_config(2)
        workload = _workload("PR", config, lanes=1, accesses_per_lane=40, seed=1)
        system = MultiGPUSystem(config, seed=1)
        system.run(workload)
        violations = audit_system(system)
        assert system.last_violations == violations


class TestFormatHistory:
    def test_renders_aligned_table(self):
        history = ProtocolHistory()
        history.emit("inval.send", "gpu0.dir", 0x10, iseq=7, dst=1)
        history.emit("inval.ack", "gpu1.tlb", 0x10, iseq=7)
        text = format_history(history, 0x10)
        lines = text.splitlines()
        assert "vpn=0x10" in lines[0]
        assert "2 record(s)" in lines[0]
        assert lines[1].startswith("cycle")
        assert "iseq=7" in text and "inval.ack" in text

    def test_empty_history_explains_itself(self):
        history = ProtocolHistory()
        text = format_history(history, 0x99)
        assert "no protocol messages" in text

    def test_truncation_is_flagged(self):
        history = ProtocolHistory(per_vpn=2)
        for iseq in range(5):
            history.emit("inval.send", "gpu0.dir", 0x10, iseq=iseq)
        assert "oldest dropped" in format_history(history, 0x10)
