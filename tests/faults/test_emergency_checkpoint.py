"""Watchdog abort × checkpointing: the emergency snapshot property.

When the liveness watchdog (or an invariant auditor) kills a run that
has the checkpoint controller armed, the abort path must flush a
best-effort ``emergency.ckpt`` next to the periodic checkpoints — in
addition to the partial-stats dump the result already carries — and
that checkpoint must restore cleanly in a system with the faults
disabled (the lossy ``exact=False`` snapshot drops in-flight episode
state and the restore-side sanitizer reconciles translation state, so
the revived run completes instead of re-deadlocking).
"""

import os
from dataclasses import replace

import pytest

from repro.config import FaultConfig, InvalidationScheme, baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.sim import snapshot as snap
from repro.workloads.base import Workload

_VPN = 1 << 20


def _migration_workload():
    hot = _VPN
    trace0 = [(10, hot, True), (20, hot, False)]
    trace1 = [(10, _VPN + 50, False)] + [(30, hot, False) for _ in range(6)]
    return Workload(name="lost-ack", traces=[[trace0], [trace1]])


def _lossy_config():
    config = baseline_config(2).with_scheme(InvalidationScheme.IDYLL)
    config = replace(config, trace_lanes=1, inflight_per_cu=4)
    # Every invalidation/ack packet dropped: the shootdown can never be
    # acknowledged, so the watchdog's hard deadline fires.
    return config.with_faults(
        drop_rate=1.0,
        ack_timeout=300,
        ack_timeout_max=600,
        max_retries=2,
        watchdog_interval=500,
        watchdog_stall_window=20_000,
        ack_deadline=4_000,
    )


class TestEmergencyCheckpoint:
    def _abort_with_checkpointing(self, tmp_path):
        system = MultiGPUSystem(_lossy_config(), seed=7)
        result = system.run(
            _migration_workload(), checkpoint_every=1000, checkpoint_dir=tmp_path
        )
        return system, result

    def test_abort_flushes_emergency_checkpoint(self, tmp_path):
        system, result = self._abort_with_checkpointing(tmp_path)
        assert result.aborted
        assert result.abort_reason  # partial-stats dump path unchanged
        assert system.abort_dump
        path = tmp_path / "emergency.ckpt"
        assert path.exists(), "abort did not flush an emergency checkpoint"
        assert system._controller.last_path == str(path) or path.exists()

    def test_emergency_checkpoint_is_wellformed(self, tmp_path):
        _system, _result = self._abort_with_checkpointing(tmp_path)
        payload = snap.load_checkpoint(tmp_path / "emergency.ckpt")
        assert payload["exact"] is False
        assert payload["now"] > 0

    def test_emergency_restore_completes_without_faults(self, tmp_path):
        """The revived run (faults off) must finish cleanly — no abort,
        no deadlock, lanes drive to completion."""
        _system, aborted = self._abort_with_checkpointing(tmp_path)
        assert aborted.aborted
        override = replace(_lossy_config(), faults=FaultConfig())
        system, result = snap.resume_run(
            tmp_path / "emergency.ckpt", override_config=override
        )
        assert not result.aborted, result.abort_reason
        assert system._master_done
        assert result.exec_time >= 0
        # Partial statistics carried across the restore: the clean run
        # keeps the pre-abort progress rather than starting from zero.
        assert result.accesses > 0

    def test_no_emergency_checkpoint_without_controller(self, tmp_path):
        system = MultiGPUSystem(_lossy_config(), seed=7)
        result = system.run(_migration_workload())
        assert result.aborted
        assert not (tmp_path / "emergency.ckpt").exists()
        assert list(tmp_path.iterdir()) == []


class TestFastpathFaultComposition:
    """Satellite: the batch tier must stand down under fault injection.

    Fault injection perturbs per-access state the replay predicate does
    not model, so a faulted system never constructs the fast path at
    all — every lane stays on the exact event tier — and faulted
    results are identical with ``fastpath_enabled`` on or off.
    """

    def _faulted_config(self, fastpath: bool):
        config = baseline_config(2).with_fastpath(fastpath)
        return config.with_faults(
            drop_rate=0.05, delay_rate=0.1, duplicate_rate=0.05,
            audit_interval=7000,
        )

    def test_faulted_system_builds_no_fastpath(self):
        system = MultiGPUSystem(self._faulted_config(fastpath=True), seed=11)
        assert system.injector is not None
        assert system.fastpath is None, (
            "fault injection must force the pure event path"
        )

    @pytest.mark.parametrize("seed", [3, 11, 19])
    def test_faulted_stats_match_no_fastpath(self, seed):
        import dataclasses
        import random

        rng = random.Random(seed)
        traces = []
        for g in range(2):
            gpu_lanes = []
            for _lane in range(2):
                local = [g * 1000 + p for p in range(40)]
                shared = list(range(90000, 90020))
                trace = []
                for _ in range(250):
                    vpn = (
                        rng.choice(shared)
                        if rng.random() < 0.1
                        else rng.choice(local)
                    )
                    trace.append(
                        (rng.choice((40, 120, 400)), vpn, rng.random() < 0.2)
                    )
                gpu_lanes.append(trace)
            traces.append(gpu_lanes)

        def build():
            return Workload(name=f"fp-faults-{seed}", traces=traces)

        with_fp = MultiGPUSystem(
            self._faulted_config(fastpath=True), seed=seed
        ).run(build())
        without_fp = MultiGPUSystem(
            self._faulted_config(fastpath=False), seed=seed
        ).run(build())
        assert dataclasses.asdict(with_fp) == dataclasses.asdict(without_fp)

    def test_unfaulted_run_still_uses_fastpath(self):
        """Guard the flip side: without faults the batch tier engages
        (no silent always-slow regression from the checkpoint work)."""
        import random as _random

        rng = _random.Random(5)
        trace = [
            (rng.choice((40, 120)), 1000 + rng.randrange(30), False)
            for _ in range(300)
        ]
        wl = Workload(name="fp-on", traces=[[trace]])
        system = MultiGPUSystem(baseline_config(1), seed=5)
        system.run(wl)
        assert system.fastpath is not None
        assert system.fastpath.replayed > 0, "batch tier never engaged"
