"""Unit tests for the hardened-invalidation tracker, plus end-to-end
retry behaviour under injected message loss."""

import pytest

from repro.config import FaultConfig, InvalidationScheme, baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.sim.engine import Engine
from repro.uvm.protocol import InvalidationTracker
from repro.workloads.base import Workload

_VPN = 1 << 20


def _tracker(**fault_overrides):
    engine = Engine()
    tracker = InvalidationTracker(engine, FaultConfig(**fault_overrides))
    return engine, tracker


class TestTrackerLifecycle:
    def test_begin_registers_synchronously(self):
        _, tracker = _tracker()
        pending = tracker.begin(1, _VPN)
        assert tracker.has_pending()
        assert tracker.is_pending_pair(1, _VPN)
        assert not pending.acked.triggered

    def test_sequence_numbers_are_unique(self):
        _, tracker = _tracker()
        seqs = {tracker.begin(0, _VPN + i).seq for i in range(10)}
        assert len(seqs) == 10

    def test_first_ack_succeeds_and_retires(self):
        _, tracker = _tracker()
        pending = tracker.begin(1, _VPN)
        assert tracker.deliver_ack(pending) is True
        assert pending.acked.triggered
        assert not tracker.has_pending()
        assert not tracker.is_pending_pair(1, _VPN)

    def test_duplicate_ack_is_idempotent(self):
        _, tracker = _tracker()
        pending = tracker.begin(1, _VPN)
        assert tracker.deliver_ack(pending) is True
        assert tracker.deliver_ack(pending) is False
        assert tracker.stats.counter("duplicate_acks").value == 1

    def test_pending_pair_counts_overlapping_invalidations(self):
        """Two in-flight invalidations for the same (gpu, vpn): the pair
        stays pending until *both* retire."""
        _, tracker = _tracker()
        a = tracker.begin(1, _VPN)
        b = tracker.begin(1, _VPN)
        tracker.deliver_ack(a)
        assert tracker.is_pending_pair(1, _VPN)
        tracker.deliver_ack(b)
        assert not tracker.is_pending_pair(1, _VPN)


class TestSuspectState:
    def test_abandon_marks_suspect_and_keeps_pending(self):
        _, tracker = _tracker()
        pending = tracker.begin(2, _VPN)
        tracker.abandon(pending)
        assert 2 in tracker.suspects
        # The target may still hold a stale translation: the record must
        # stay visible to the watchdog's ack deadline and the auditor.
        assert tracker.has_pending()
        assert tracker.is_pending_pair(2, _VPN)

    def test_late_ack_rescues_abandoned_invalidation(self):
        _, tracker = _tracker()
        pending = tracker.begin(2, _VPN)
        tracker.abandon(pending)
        assert tracker.deliver_ack(pending) is True
        assert pending.acked.triggered
        assert not tracker.has_pending()
        assert tracker.stats.counter("acks_after_abandon").value == 1
        # Suspect status is only cleared by a clean-ack streak.
        assert 2 in tracker.suspects

    def test_suspect_recovers_after_clean_streak(self):
        _, tracker = _tracker(suspect_recovery=3)
        tracker.abandon(tracker.begin(2, _VPN))
        for i in range(3):
            assert 2 in tracker.suspects
            tracker.deliver_ack(tracker.begin(2, _VPN + 1 + i))
        assert 2 not in tracker.suspects
        assert tracker.stats.counter("suspects_recovered").value == 1

    def test_retry_breaks_clean_streak(self):
        _, tracker = _tracker(suspect_recovery=2)
        tracker.abandon(tracker.begin(2, _VPN))
        tracker.deliver_ack(tracker.begin(2, _VPN + 1))
        tracker.note_retry(2)                      # timeout resets the streak
        tracker.deliver_ack(tracker.begin(2, _VPN + 2))
        assert 2 in tracker.suspects               # streak restarted at 1
        tracker.deliver_ack(tracker.begin(2, _VPN + 3))
        assert 2 not in tracker.suspects

    def test_retried_ack_does_not_count_toward_streak(self):
        _, tracker = _tracker(suspect_recovery=1)
        tracker.abandon(tracker.begin(2, _VPN))
        pending = tracker.begin(2, _VPN + 1)
        pending.attempts = 1                       # arrived only after a retry
        tracker.deliver_ack(pending)
        assert 2 in tracker.suspects


class TestDeadlines:
    def test_deadline_violation_reports_oldest(self):
        engine, tracker = _tracker()
        pending = tracker.begin(1, _VPN)

        def advance():
            yield 10_000

        engine.process(advance())
        engine.run()
        assert tracker.oldest_pending_age() == 10_000
        message = tracker.deadline_violation(5_000)
        assert message is not None and f"seq={pending.seq}" in message
        assert tracker.deadline_violation(20_000) is None

    def test_dump_lists_pending_and_suspects(self):
        _, tracker = _tracker()
        tracker.abandon(tracker.begin(3, _VPN))
        dump = tracker.dump()
        assert "pending invalidations: 1" in dump
        assert "suspect GPUs: [3]" in dump


def _migration_workload():
    hot = _VPN
    trace0 = [(10, hot, True), (20, hot, False)]
    trace1 = [(10, _VPN + 50, False)] + [(30, hot, False) for _ in range(6)]
    return Workload(name="retry-e2e", traces=[[trace0], [trace1]])


def _idyll_config(**fault_overrides):
    from dataclasses import replace

    config = baseline_config(2).with_scheme(InvalidationScheme.IDYLL)
    config = replace(config, trace_lanes=1, inflight_per_cu=4)
    return config.with_faults(**fault_overrides)


class TestEndToEndRetry:
    def test_dropped_invalidations_are_retried_to_completion(self):
        """With a lossy (but not total) channel the migration's shootdown
        must eventually land: retries > 0, run completes, audit clean."""
        config = _idyll_config(
            drop_rate=0.4, ack_timeout=1200, ack_timeout_max=4800, max_retries=8
        )
        result = MultiGPUSystem(config, seed=13).run(_migration_workload())
        assert not result.aborted, result.abort_reason
        assert result.migrations >= 1
        assert result.inval_retries >= 1
        assert result.audits_run >= 1          # quiesce audit auto-armed

    def test_duplicate_requests_are_deduplicated(self):
        config = _idyll_config(duplicate_rate=1.0)
        result = MultiGPUSystem(config, seed=13).run(_migration_workload())
        assert not result.aborted, result.abort_reason
        assert result.inval_duplicates >= 1

    def test_same_seed_same_faulted_result(self):
        config = _idyll_config(drop_rate=0.3, delay_rate=0.3, duplicate_rate=0.2,
                               ack_timeout=1500, ack_timeout_max=6000)
        a = MultiGPUSystem(config, seed=21).run(_migration_workload())
        b = MultiGPUSystem(config, seed=21).run(_migration_workload())
        assert (a.exec_time, a.inval_retries, a.faults_injected) == (
            b.exec_time, b.inval_retries, b.faults_injected
        )

    def test_faults_disabled_means_no_protocol_overhead(self):
        config = _idyll_config()                  # all rates zero
        system = MultiGPUSystem(config, seed=13)
        assert system.injector is None
        assert system.driver.tracker is None
        result = system.run(_migration_workload())
        assert result.faults_injected == 0
        assert result.inval_retries == 0
        assert not result.aborted
