"""Regression pin: versioned mapping-update payloads close the residual
stale-translation window under heavy uniform loss.

Before payload versioning, two interleavings could install a stale
translation *after* a hardened-sequence shootdown had already been
applied, so the run survived the protocol layer but tripped the
consistency auditors:

* **Raced MSHR fill** (seed 5, ``gpu0 ... stale vpn from l1tlb1``): a
  secondary miss parked on the L2 MSHR resumes after the primary's
  completion and installs the pre-shootdown frame into its L1 — the
  shootdown walked the TLBs *between* the completion and the waiter's
  install.
* **Late UPDATE push** (seed 7, ``gpu1 ... stale vpn from
  page_table``): ``deliver_mapping``'s UPDATE walk retires after a
  newer invalidation for the same page, re-installing the pre-shootdown
  owner into the local page table.

The fix stamps every in-flight translation payload with the page's
invalidation epoch (bumped once per applied hardened sequence number)
at *fetch* time — when the far fault is raised, not when its reply
arrives, because a shootdown fully applied during the round trip would
otherwise bump the epoch before capture and the staleness check would
pass vacuously.  Stale fills are dropped at install time and
re-translated (``stale_payload_drops`` / ``stale_install_races``); a
stale UPDATE push is undone at walk retirement with a page-table
invalidate + shootdown (``stale_push_undone``).

``retries=14`` raises the hardened protocol's retry budget above the
default 7: at heavy's 0.20 per-leg drop rate a full round trip fails
with probability 0.36, so 8 attempts all failing (→ abandon → watchdog
abort) has probability ~2.8e-4 per invalidation — with thousands of
invalidations per run that liveness abort is *expected* at the default
budget and is by design, not a staleness leak.  The raised budget
isolates the property under test.  ``repro chaos dump KM --gpus 4
--scheme idyll --faults heavy,watchdog=on,retries=14 --audit 20000
--seed 7 --vpn 0x24000c`` shows the fixed interleaving — the far
fault's reply spans a whole migration and the fetch-time epoch catches
it at install::

    369176  122034  mig.done            uvm   src=0 dst=3 waited=6300
    369880  122339  fault.resolve       uvm   gpu=1 cycles=25598
    369980  122377  fault.stale_install gpu1
    369980  122378  fault.raise         uvm   gpu=1 write=True

(the 25598-cycle resolve started *before* ``mig.start``; the word it
carried named the pre-migration owner, and before the fix gpu1
installed it into its page table 100 cycles after the migration
committed — the cycle-300000 audit violation).

These seeds are the pin: under these exact flags they reproduced the
two stale-translation aborts deterministically before the fix (seed 5
at cycle 240000 via l1tlb1, seed 7 at cycle 300000 via page_table),
and must stay clean — with the defence provably engaged, not vacuously
idle.
"""

import pytest

from repro.config import InvalidationScheme, MigrationPolicy, baseline_config
from repro.experiments.runner import build_app_workload
from repro.faults.profiles import parse_fault_spec
from repro.gpu.system import MultiGPUSystem

#: the two seeds that deterministically reproduced the two stale
#: interleavings before payload versioning (plus one always-clean one).
REGRESSION_SEEDS = (5, 7)

SIZES = dict(lanes=4, accesses_per_lane=1200)


def _run_heavy(seed: int):
    config = (
        baseline_config(4)
        .with_scheme(InvalidationScheme.IDYLL)
        .with_policy(MigrationPolicy.ACCESS_COUNTER)
    )
    config = config.with_faults(parse_fault_spec("heavy,watchdog=on,retries=14"))
    config = config.with_faults(audit_interval=20_000, audit_on_quiesce=True)
    workload = build_app_workload(
        "KM", num_gpus=4, page_size=config.page_size, scale=1.0,
        seed=seed, **SIZES,
    )
    system = MultiGPUSystem(config, seed=seed)
    result = system.run(workload)
    return system, result


class TestStalePayloadRegression:
    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_heavy_loss_survives_all_audits(self, seed):
        system, result = _run_heavy(seed)
        assert not result.aborted, (
            f"seed {seed} regressed: {result.abort_reason}\n"
            f"{system.abort_dump}"
        )
        assert system.audits_run > 0, "auditors never ran — vacuous pass"
        assert result.faults_injected > 0, "no faults injected — vacuous pass"

    def test_defence_actually_engages(self):
        """Across the pinned seeds, the versioned-payload machinery must
        fire at least once (stale fill dropped, stale install re-fetched,
        or stale push undone) — otherwise these tests prove nothing
        about the window."""
        engaged = 0
        for seed in REGRESSION_SEEDS:
            system, result = _run_heavy(seed)
            assert not result.aborted
            for gpu in system.gpus:
                engaged += gpu.stats.counter("stale_payload_drops").value
                engaged += gpu.stats.counter("stale_install_races").value
                engaged += gpu.stats.counter("stale_push_undone").value
        assert engaged > 0, (
            "heavy-loss runs exercised neither stale-fill drop nor "
            "stale-push undo; the regression pin has gone vacuous"
        )
