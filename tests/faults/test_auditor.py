"""Invariant auditors: a consistent system passes, artificially staled
translation state is caught and reported."""

import pytest

from repro.config import InvalidationScheme, baseline_config
from repro.faults.auditor import audit_system, protocol_dump
from repro.gpu.system import MultiGPUSystem
from repro.memory import pte as pte_bits
from repro.workloads.base import Workload

_VPN = 1 << 20


def _run_small_system(scheme=InvalidationScheme.IDYLL, num_gpus=2):
    from dataclasses import replace

    config = baseline_config(num_gpus).with_scheme(scheme)
    config = replace(config, trace_lanes=1, inflight_per_cu=4)
    hot = _VPN
    trace0 = [(10, hot, True), (10, _VPN + 100, False), (20, hot, False)]
    trace1 = [(10, _VPN + 200, False)] + [(30, hot, False) for _ in range(6)]
    traces = [[trace0], [trace1]][:num_gpus]
    workload = Workload(name="audit", traces=traces)
    system = MultiGPUSystem(config, seed=7)
    system.run(workload)
    return system


class TestCleanSystems:
    @pytest.mark.parametrize(
        "scheme",
        [InvalidationScheme.BROADCAST, InvalidationScheme.IDYLL,
         InvalidationScheme.LAZY],
    )
    def test_quiesced_system_is_consistent(self, scheme):
        system = _run_small_system(scheme)
        assert audit_system(system) == []

    def test_single_gpu_system_is_consistent(self):
        from dataclasses import replace

        config = replace(baseline_config(1), trace_lanes=1, inflight_per_cu=4)
        trace = [(10, _VPN + i, False) for i in range(4)]
        system = MultiGPUSystem(config, seed=7)
        system.run(Workload(name="audit1", traces=[[trace]]))
        assert audit_system(system) == []


class TestPoisonedSystems:
    def test_stale_tlb_entry_is_reported(self):
        """A TLB entry whose frame disagrees with the host page table —
        exactly what a lost invalidation leaves behind — must trip the
        no-stale-translation check."""
        system = _run_small_system()
        ghost = _VPN + 0x5000                     # never touched by the run
        system.gpus[0].l2_tlb.insert(ghost, pte_bits.make_pte(0x1234))
        violations = audit_system(system)
        assert violations
        assert any("stale" in v and "l2tlb" in v for v in violations)

    def test_uncovered_residency_is_reported(self):
        """Under a directory scheme, a translation the directory does not
        cover would be skipped by every future shootdown."""
        system = _run_small_system(InvalidationScheme.IDYLL)
        assert system.driver.directory is not None
        ghost = _VPN + 0x6000
        system.gpus[1].l2_tlb.insert(ghost, pte_bits.make_pte(0x4321))
        violations = audit_system(system)
        assert any("directory does not list" in v for v in violations)

    def test_pending_invalidation_excuses_residency(self):
        """An in-flight tracked invalidation legitimately explains a
        stale-looking entry: the auditor must not cry wolf."""
        system = _run_small_system()
        from repro.config import FaultConfig
        from repro.uvm.protocol import InvalidationTracker

        tracker = InvalidationTracker(system.engine, FaultConfig())
        system.driver.tracker = tracker
        ghost = _VPN + 0x7000
        system.gpus[0].l2_tlb.insert(ghost, pte_bits.make_pte(0x1111))
        tracker.begin(0, ghost)
        assert audit_system(system) == []

    def test_migration_gate_excuses_residency(self):
        system = _run_small_system()
        ghost = _VPN + 0x8000
        system.gpus[0].l2_tlb.insert(ghost, pte_bits.make_pte(0x2222))
        system.driver._gates[ghost] = object()
        try:
            assert audit_system(system) == []
        finally:
            del system.driver._gates[ghost]


class TestProtocolDump:
    def test_dump_mentions_every_gpu_and_counters(self):
        system = _run_small_system()
        dump = protocol_dump(system, violations=["example violation"])
        assert "example violation" in dump
        for gpu in system.gpus:
            assert f"gpu{gpu.gpu_id}:" in dump
        assert "invalidations_sent=" in dump
