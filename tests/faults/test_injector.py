"""Unit tests for the seeded fault injector."""

import pytest

from repro.config import FaultConfig
from repro.faults.injector import CLEAN_PLAN, FaultInjector


def _plans(injector, tag, n=40):
    return [injector.message_plan(tag) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_plans(self):
        config = FaultConfig(drop_rate=0.2, delay_rate=0.3, duplicate_rate=0.1,
                             reorder_rate=0.1)
        a = FaultInjector(config, seed=42)
        b = FaultInjector(config, seed=42)
        assert _plans(a, "uvm.inval") == _plans(b, "uvm.inval")

    def test_different_seeds_diverge(self):
        config = FaultConfig(drop_rate=0.5, delay_rate=0.5)
        a = FaultInjector(config, seed=1)
        b = FaultInjector(config, seed=2)
        assert _plans(a, "uvm.inval", 60) != _plans(b, "uvm.inval", 60)

    def test_sites_are_independent_streams(self):
        """Interleaving draws at one site must not perturb another site's
        sequence (each tag owns its own RNG stream)."""
        config = FaultConfig(drop_rate=0.3, delay_rate=0.3, duplicate_rate=0.3)
        solo = FaultInjector(config, seed=9)
        expected = _plans(solo, "site.a", 30)
        mixed = FaultInjector(config, seed=9)
        got = []
        for i in range(30):
            mixed.message_plan("site.b")          # interleaved noise
            got.append(mixed.message_plan("site.a"))
            if i % 3 == 0:
                mixed.walker_stall("site.c")
        assert got == expected

    def test_rate_change_does_not_shift_other_knobs(self):
        """Fixed draw count per decision: raising the drop rate must not
        re-align which calls get delayed/duplicated."""
        low = FaultInjector(FaultConfig(drop_rate=0.0, duplicate_rate=0.4), seed=5)
        high = FaultInjector(FaultConfig(drop_rate=0.0001, duplicate_rate=0.4), seed=5)
        dup_low = [p.duplicate for p in _plans(low, "t", 80)]
        dup_high = [p.duplicate for p in _plans(high, "t", 80)]
        assert dup_low == dup_high


class TestPlanSemantics:
    def test_zero_rates_always_clean(self):
        injector = FaultInjector(FaultConfig(), seed=3)
        assert all(p is CLEAN_PLAN for p in _plans(injector, "x", 50))
        assert injector.injected_total() == 0

    def test_drop_rate_one_always_drops(self):
        injector = FaultInjector(FaultConfig(drop_rate=1.0), seed=3)
        plans = _plans(injector, "x", 20)
        assert all(p.drop and p.kinds == ("drop",) for p in plans)
        assert injector.injected_total() == 20

    def test_drop_dominates_other_faults(self):
        injector = FaultInjector(
            FaultConfig(drop_rate=1.0, delay_rate=1.0, duplicate_rate=1.0), seed=3
        )
        for plan in _plans(injector, "x", 20):
            assert plan.drop and plan.delay == 0 and not plan.duplicate

    def test_reorder_uses_upper_half_of_delay_range(self):
        injector = FaultInjector(
            FaultConfig(reorder_rate=1.0, delay_max=1000), seed=3
        )
        for plan in _plans(injector, "x", 20):
            assert 501 <= plan.delay <= 1000
            assert plan.kinds == ("reorder",)

    def test_plain_delay_uses_lower_half(self):
        injector = FaultInjector(
            FaultConfig(delay_rate=1.0, delay_max=1000), seed=3
        )
        for plan in _plans(injector, "x", 20):
            assert 1 <= plan.delay <= 500

    def test_clean_property(self):
        assert CLEAN_PLAN.clean
        injector = FaultInjector(FaultConfig(duplicate_rate=1.0), seed=3)
        assert not injector.message_plan("x").clean


class TestComponentFaults:
    def test_walker_stall_rate_one(self):
        injector = FaultInjector(
            FaultConfig(walker_stall_rate=1.0, walker_stall_cycles=123), seed=3
        )
        assert injector.walker_stall("gmmu0") == 123

    def test_walker_stall_rate_zero(self):
        injector = FaultInjector(FaultConfig(), seed=3)
        assert injector.walker_stall("gmmu0") == 0

    def test_irmb_pressure(self):
        on = FaultInjector(FaultConfig(irmb_pressure_rate=1.0), seed=3)
        off = FaultInjector(FaultConfig(), seed=3)
        assert on.irmb_pressure("g0.irmb") is True
        assert off.irmb_pressure("g0.irmb") is False

    def test_summary_counts_injections(self):
        injector = FaultInjector(FaultConfig(drop_rate=1.0), seed=3)
        injector.message_plan("x")
        assert "drop=1" in injector.summary()
