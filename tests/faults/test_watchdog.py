"""Liveness watchdog: a lost-ack deadlock must abort loudly (with the
protocol dump and partial statistics), never hang or silently complete."""

import pytest

from repro.config import InvalidationScheme, baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.sim.engine import Engine, LivenessWatchdog, WatchdogError
from repro.workloads.base import Workload

_VPN = 1 << 20


def _migration_workload():
    hot = _VPN
    trace0 = [(10, hot, True), (20, hot, False)]
    trace1 = [(10, _VPN + 50, False)] + [(30, hot, False) for _ in range(6)]
    return Workload(name="lost-ack", traces=[[trace0], [trace1]])


def _lossy_config(**overrides):
    from dataclasses import replace

    config = baseline_config(2).with_scheme(InvalidationScheme.IDYLL)
    config = replace(config, trace_lanes=1, inflight_per_cu=4)
    # Every invalidation/ack packet is dropped: the shootdown can never
    # be acknowledged, so retries exhaust and the run must abort.
    faults = dict(
        drop_rate=1.0,
        ack_timeout=300,
        ack_timeout_max=600,
        max_retries=2,
        watchdog_interval=500,
        watchdog_stall_window=20_000,
        ack_deadline=4_000,
    )
    faults.update(overrides)
    return config.with_faults(**faults)


class TestWatchdogUnit:
    def test_stalled_progress_aborts(self):
        engine = Engine()

        def ticker():
            while True:
                yield 100

        engine.process(ticker())
        LivenessWatchdog(
            engine,
            interval=50,
            stall_window=500,
            progress_fn=lambda: 0,
            dump_fn=lambda: "diagnostic snapshot",
        )
        with pytest.raises(WatchdogError) as exc:
            engine.run(until=100_000)
        assert "no forward progress" in str(exc.value)
        assert exc.value.dump == "diagnostic snapshot"

    def test_advancing_progress_never_aborts(self):
        engine = Engine()
        beats = [0]

        def ticker():
            for _ in range(50):
                beats[0] += 1
                yield 100

        engine.process(ticker())
        watchdog = LivenessWatchdog(
            engine,
            interval=50,
            stall_window=500,
            progress_fn=lambda: beats[0],
            active_fn=lambda: beats[0] < 50,
        )
        engine.run()
        assert watchdog.checks > 0

    def test_deadline_overrides_progress(self):
        """A hard ack-deadline violation aborts even while other lanes
        keep the progress metric moving."""
        engine = Engine()
        beats = [0]

        def ticker():
            while True:
                beats[0] += 1
                yield 100

        engine.process(ticker())
        LivenessWatchdog(
            engine,
            interval=50,
            stall_window=10_000,
            progress_fn=lambda: beats[0],
            deadline_fn=lambda: "seq=1 unacked" if engine.now > 1000 else None,
        )
        with pytest.raises(WatchdogError) as exc:
            engine.run(until=100_000)
        assert "hard deadline exceeded" in str(exc.value)


class TestLostAckDeadlock:
    def test_total_ack_loss_aborts_with_dump(self):
        system = MultiGPUSystem(_lossy_config(), seed=13)
        result = system.run(_migration_workload())
        assert result.aborted
        assert "deadline" in result.abort_reason or "progress" in result.abort_reason
        # The dump carries the stuck protocol state for diagnosis.
        assert "pending invalidations" in system.abort_dump
        assert "suspect GPUs" in system.abort_dump

    def test_partial_stats_flushed_on_abort(self):
        """Satellite regression: an aborted run used to lose every stat;
        the collector must still flush what happened up to the abort."""
        result = MultiGPUSystem(_lossy_config(), seed=13).run(_migration_workload())
        assert result.aborted
        assert result.exec_time > 0
        assert result.far_faults >= 1
        assert result.invalidations_sent >= 1
        assert result.inval_timeouts >= 1
        assert result.inval_abandoned >= 1
        assert result.faults_injected >= 1

    def test_watchdog_disabled_still_refuses_silent_deadlock(self):
        """Even with the watchdog off, a drained calendar with unretired
        lanes must be reported as an abort, not a completed run."""
        config = _lossy_config(watchdog_enabled=False, audit_on_quiesce=False)
        system = MultiGPUSystem(config, seed=13)
        result = system.run(_migration_workload())
        assert result.aborted
        assert "deadlock" in result.abort_reason

    def test_runner_warns_on_aborted_run(self, capsys):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(lanes=1, accesses_per_lane=60, seed=7)
        result = runner.run("PR", _lossy_config())
        assert result.aborted
        assert "WARNING: run aborted" in capsys.readouterr().err
