"""Unit tests for the set-associative TLB."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import TLBConfig
from repro.tlb.tlb import TLB


def make_tlb(entries=8, assoc=2, latency=1):
    return TLB(TLBConfig(entries, assoc, latency))


class TestGeometry:
    def test_table2_l1(self):
        tlb = TLB(TLBConfig(32, 32, 1))  # fully associative
        assert tlb.config.sets == 1

    def test_table2_l2(self):
        tlb = TLB(TLBConfig(512, 16, 10))
        assert tlb.config.sets == 32
        assert tlb.lookup_latency == 10

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TLBConfig(10, 3, 1)


class TestLookupInsert:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(5) is None
        tlb.insert(5, 0xAB)
        assert tlb.lookup(5) == 0xAB
        assert tlb.stats.counter("hits").value == 1
        assert tlb.stats.counter("misses").value == 1

    def test_insert_overwrites(self):
        tlb = make_tlb()
        tlb.insert(5, 1)
        tlb.insert(5, 2)
        assert tlb.lookup(5) == 2

    def test_peek_and_probe_do_not_touch_stats(self):
        tlb = make_tlb()
        tlb.insert(5, 1)
        assert tlb.probe(5)
        assert tlb.peek(5) == 1
        assert tlb.peek(6) is None
        assert tlb.stats.counter("hits").value == 0
        assert tlb.stats.counter("misses").value == 0

    def test_lru_within_set(self):
        tlb = make_tlb(entries=4, assoc=2)  # 2 sets
        # VPNs 0, 2, 4 all map to set 0
        tlb.insert(0, 10)
        tlb.insert(2, 12)
        tlb.lookup(0)      # refresh 0 -> 2 becomes LRU
        tlb.insert(4, 14)  # evicts 2
        assert tlb.probe(0) and tlb.probe(4) and not tlb.probe(2)

    def test_occupancy_bounded_by_capacity(self):
        tlb = make_tlb(entries=8, assoc=2)
        for vpn in range(100):
            tlb.insert(vpn, vpn)
        assert tlb.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_set_isolation_property(self, inserts):
        """Entries never evict entries of other sets."""
        tlb = make_tlb(entries=8, assoc=2)
        for vpn in inserts:
            tlb.insert(vpn, vpn)
        for s, entry_set in enumerate(tlb._sets):
            for vpn in entry_set:
                assert vpn % tlb.config.sets == s
            assert len(entry_set) <= tlb.config.associativity


class TestShootdown:
    def test_shootdown_removes_entry(self):
        tlb = make_tlb()
        tlb.insert(5, 1)
        assert tlb.shootdown(5) is True
        assert tlb.lookup(5) is None
        assert tlb.stats.counter("shootdowns").value == 1

    def test_shootdown_missing_entry(self):
        assert make_tlb().shootdown(5) is False

    def test_flush_empties_all_sets(self):
        tlb = make_tlb()
        for vpn in range(8):
            tlb.insert(vpn, vpn)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_hit_rate(self):
        tlb = make_tlb()
        tlb.insert(1, 1)
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate() == 0.5
