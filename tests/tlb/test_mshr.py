"""Unit tests for the coalescing MSHR."""

import pytest

from repro.sim.engine import Engine
from repro.tlb.mshr import MSHR


class TestAllocation:
    def test_first_allocator_is_primary(self):
        mshr = MSHR(Engine())
        assert mshr.allocate(5) is True
        assert mshr.allocate(5) is False
        assert 5 in mshr
        assert mshr.outstanding == 1

    def test_distinct_vpns_independent(self):
        mshr = MSHR(Engine())
        assert mshr.allocate(1)
        assert mshr.allocate(2)
        assert mshr.outstanding == 2


class TestCoalescing:
    def test_waiters_released_with_fill_value(self):
        engine = Engine()
        mshr = MSHR(engine)
        mshr.allocate(5)
        waiters = [mshr.wait(5) for _ in range(3)]
        released = mshr.complete(5, value=0xCAFE)
        engine.run()
        assert released == 3
        assert all(w.value == 0xCAFE for w in waiters)
        assert 5 not in mshr

    def test_wait_without_allocation_raises(self):
        with pytest.raises(KeyError):
            MSHR(Engine()).wait(5)

    def test_complete_without_allocation_raises(self):
        with pytest.raises(KeyError):
            MSHR(Engine()).complete(5)

    def test_reallocation_after_complete(self):
        mshr = MSHR(Engine())
        mshr.allocate(5)
        mshr.complete(5)
        assert mshr.allocate(5) is True

    def test_stats_track_primary_and_coalesced(self):
        mshr = MSHR(Engine())
        mshr.allocate(5)
        mshr.wait(5)
        mshr.wait(5)
        assert mshr.stats.counter("primary_misses").value == 1
        assert mshr.stats.counter("coalesced_misses").value == 2
