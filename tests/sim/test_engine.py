"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import AllOf, Engine, Event, Process, SimulationError, Timeout


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0

    def test_schedule_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, order.append, "c")
        engine.schedule(10, order.append, "a")
        engine.schedule(20, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_cycle_events_fire_in_schedule_order(self):
        engine = Engine()
        order = []
        for tag in range(5):
            engine.schedule(7, order.append, tag)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_zero_delay_uses_ready_queue(self):
        engine = Engine()
        seen = []
        engine.schedule(0, seen.append, 1)
        engine.run()
        assert seen == [1]
        assert engine.now == 0

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_run_returns_final_time(self):
        engine = Engine()
        engine.schedule(42, lambda: None)
        assert engine.run() == 42

    def test_run_until_stops_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(100, fired.append, True)
        assert engine.run(until=50) == 50
        assert fired == []
        # A second run drains the rest.
        engine.run()
        assert fired == [True]

    def test_run_until_advances_idle_clock(self):
        engine = Engine()
        engine.run(until=99)
        assert engine.now == 99

    def test_peek_reports_next_event(self):
        engine = Engine()
        assert engine.peek() is None
        engine.schedule(5, lambda: None)
        assert engine.peek() == 5

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def outer():
            times.append(engine.now)
            engine.schedule(10, inner)

        def inner():
            times.append(engine.now)

        engine.schedule(5, outer)
        engine.run()
        assert times == [5, 15]


class TestEvent:
    def test_succeed_fires_callbacks(self):
        engine = Engine()
        ev = engine.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(123)
        engine.run()
        assert got == [123]

    def test_callback_after_trigger_still_fires(self):
        engine = Engine()
        ev = engine.event()
        ev.succeed("x")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        engine.run()
        assert got == ["x"]

    def test_double_succeed_rejected(self):
        engine = Engine()
        ev = engine.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_rejected(self):
        engine = Engine()
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_timeout_fires_after_delay(self):
        engine = Engine()
        ev = Timeout(engine, 25, value="done")
        engine.run()
        assert ev.triggered
        assert ev.value == "done"
        assert engine.now == 25


class TestProcess:
    def test_process_yields_int_timeouts(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield 10
            trace.append(engine.now)
            yield 5
            trace.append(engine.now)

        engine.process(proc())
        engine.run()
        assert trace == [0, 10, 15]

    def test_zero_int_yield_continues_immediately(self):
        engine = Engine()

        def proc():
            yield 0
            yield 0
            return engine.now

        p = engine.process(proc())
        engine.run()
        assert p.value == 0

    def test_process_return_value_propagates(self):
        engine = Engine()

        def child():
            yield 3
            return "result"

        def parent():
            value = yield engine.process(child())
            return value + "!"

        p = engine.process(parent())
        engine.run()
        assert p.value == "result!"

    def test_process_waits_on_event(self):
        engine = Engine()
        ev = engine.event()
        got = []

        def waiter():
            got.append((yield ev))

        engine.process(waiter())
        engine.schedule(7, lambda: ev.succeed("ping"))
        engine.run()
        assert got == ["ping"]

    def test_yielding_garbage_raises(self):
        engine = Engine()

        def bad():
            yield "not a waitable"

        engine.process(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_many_sequential_processes_terminate(self):
        engine = Engine()
        done = []

        def worker(i):
            yield i + 1
            done.append(i)

        for i in range(100):
            engine.process(worker(i))
        engine.run()
        assert len(done) == 100


class TestAllOf:
    def test_allof_waits_for_all(self):
        engine = Engine()
        events = [Timeout(engine, d) for d in (5, 15, 10)]
        combined = AllOf(engine, events)
        finished_at = []
        combined.add_callback(lambda _e: finished_at.append(engine.now))
        engine.run()
        assert finished_at == [15]

    def test_allof_empty_fires_immediately(self):
        engine = Engine()
        combined = AllOf(engine, [])
        assert combined.triggered

    def test_allof_collects_values(self):
        engine = Engine()
        events = [Timeout(engine, 1, value="a"), Timeout(engine, 2, value="b")]
        combined = AllOf(engine, events)
        engine.run()
        assert combined.value == ["a", "b"]

    def test_allof_with_pretriggered_children(self):
        engine = Engine()
        ev = engine.event()
        ev.succeed(1)
        combined = AllOf(engine, [ev, Timeout(engine, 4, value=2)])
        engine.run()
        assert combined.value == [1, 2]


class TestHeapHygiene:
    """Cancelled Timeouts must not accumulate as heap corpses: once dead
    entries outnumber live ones the calendar compacts, and natural
    drains reclaim the dead count lazily."""

    def test_cancelled_timeout_never_fires(self):
        engine = Engine()
        fired = []
        timeout = Timeout(engine, 10)
        timeout.add_callback(lambda _e: fired.append(engine.now))
        timeout.cancel()
        engine.run()
        assert fired == []
        assert not timeout.triggered

    def test_cancel_is_idempotent_and_safe_after_fire(self):
        engine = Engine()
        timeout = Timeout(engine, 5)
        engine.run()
        assert timeout.triggered
        timeout.cancel()  # after fire: no-op
        other = Timeout(engine, 5)
        other.cancel()
        other.cancel()  # double cancel: no-op
        # The lone corpse immediately trips compaction (1 dead > 0 live).
        assert engine._dead == 0
        assert len(engine._heap) == 0

    def test_mass_cancellation_compacts_heap(self):
        engine = Engine()
        doomed = [Timeout(engine, 100 + i) for i in range(64)]
        survivor = Timeout(engine, 500)
        assert len(engine._heap) == 65
        for timeout in doomed:
            timeout.cancel()
        # Compaction triggers once dead entries outnumber live ones and
        # drops every corpse, resetting the dead count.
        assert len(engine._heap) == 1
        assert engine._dead == 0
        fired = []
        survivor.add_callback(lambda _e: fired.append(engine.now))
        engine.run()
        assert fired == [500]

    def test_compaction_preserves_order_of_survivors(self):
        engine = Engine()
        order = []
        keep = [Timeout(engine, d, value=d) for d in (30, 10, 20)]
        for timeout in keep:
            timeout.add_callback(lambda e: order.append(e.value))
        doomed = [Timeout(engine, 40 + i) for i in range(16)]
        for timeout in doomed:
            timeout.cancel()
        engine.run()
        assert order == [10, 20, 30]

    def test_naturally_drained_corpse_reclaims_dead_count(self):
        engine = Engine()
        # One live entry keeps the heap big enough that a single cancel
        # does not trip compaction; the corpse must then drain lazily.
        Timeout(engine, 50)
        Timeout(engine, 60)
        victim = Timeout(engine, 10)
        victim.cancel()
        assert engine._dead == 1
        assert len(engine._heap) == 3  # corpse still resident
        engine.run()
        assert engine._dead == 0


class TestRunBatchUntil:
    """run_batch_until drains events at or before the bound and advances
    the clock to it, re-entrantly from inside a callback."""

    def test_drains_up_to_bound_and_advances_clock(self):
        engine = Engine()
        fired = []
        for delay in (5, 10, 15):
            engine.schedule(delay, fired.append, delay)
        engine.run_batch_until(10)
        assert fired == [5, 10]
        assert engine.now == 10
        engine.run()
        assert fired == [5, 10, 15]

    def test_advances_idle_clock(self):
        engine = Engine()
        engine.run_batch_until(25)
        assert engine.now == 25

    def test_reentrant_from_event_callback(self):
        engine = Engine()
        seen = []

        def consume_next():
            engine.run_batch_until(20)
            seen.append(("inner", engine.now))

        engine.schedule(5, consume_next)
        engine.schedule(20, seen.append, "later")
        engine.run()
        # The bounded drain consumes the t=20 event *inside* the t=5
        # callback, so "later" lands first and the clock is already at 20.
        assert seen == ["later", ("inner", 20)]
