"""Tests for process interruption and edge cases of the event kernel."""

import pytest

from repro.sim.engine import Engine, Interrupt, SimulationError


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self):
        engine = Engine()
        log = []

        def victim():
            try:
                yield 1000
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, engine.now))

        proc = engine.process(victim())
        engine.schedule(10, proc.interrupt, "reason")
        engine.run()
        assert log == [("interrupted", "reason", 10)]

    def test_interrupt_detaches_from_waited_event(self):
        engine = Engine()
        ev = engine.event()

        def victim():
            try:
                yield ev
            except Interrupt:
                return "stopped"

        proc = engine.process(victim())
        engine.schedule(5, proc.interrupt)
        engine.run()
        assert proc.value == "stopped"
        # The original event firing later must not resume the dead process.
        ev.succeed("late")
        engine.run()
        assert proc.value == "stopped"

    def test_interrupting_finished_process_is_noop(self):
        engine = Engine()

        def quick():
            yield 1

        proc = engine.process(quick())
        engine.run()
        proc.interrupt()
        engine.run()
        assert proc.triggered

    def test_uncaught_interrupt_terminates_process(self):
        engine = Engine()

        def victim():
            yield 1000

        proc = engine.process(victim())
        engine.schedule(1, proc.interrupt)
        engine.run()
        assert proc.triggered
        assert proc.value is None


class TestEngineEdgeCases:
    def test_run_while_running_rejected(self):
        engine = Engine()

        def reentrant():
            engine.run()
            yield 1

        engine.process(reentrant())
        with pytest.raises(SimulationError):
            engine.run()

    def test_ready_queue_drains_before_heap(self):
        engine = Engine()
        order = []
        engine.schedule(0, order.append, "zero")
        engine.schedule(1, order.append, "one")
        engine.run()
        assert order == ["zero", "one"]

    def test_zero_delay_cascade_same_cycle(self):
        engine = Engine()
        depth = []

        def cascade(n):
            if n:
                engine.schedule(0, cascade, n - 1)
            else:
                depth.append(engine.now)

        engine.schedule(5, cascade, 50)
        engine.run()
        assert depth == [5]

    def test_event_fail_propagates_exception(self):
        engine = Engine()
        ev = engine.event()
        caught = []

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        engine.process(waiter())
        ev.fail(RuntimeError("boom"))
        engine.run()
        assert caught == ["boom"]
