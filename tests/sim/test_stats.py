"""Unit tests for the statistics primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, Histogram, LatencyStat, StatsGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add(self):
        c = Counter("c")
        c.add()
        c.add(5)
        assert c.value == 6


class TestLatencyStat:
    def test_empty_mean_is_zero(self):
        assert LatencyStat("l").mean == 0.0

    def test_records_min_max_total(self):
        stat = LatencyStat("l")
        for sample in (5, 1, 9):
            stat.record(sample)
        assert (stat.count, stat.total, stat.min, stat.max) == (3, 15, 1, 9)
        assert stat.mean == 5.0

    def test_merge(self):
        a, b = LatencyStat("a"), LatencyStat("b")
        a.record(10)
        b.record(2)
        b.record(30)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (3, 42, 2, 30)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_aggregates_match_python(self, samples):
        stat = LatencyStat("l")
        for s in samples:
            stat.record(s)
        assert stat.count == len(samples)
        assert stat.total == sum(samples)
        assert stat.min == min(samples)
        assert stat.max == max(samples)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1),
    )
    def test_merge_equivalent_to_combined_stream(self, xs, ys):
        merged = LatencyStat("m")
        for s in xs:
            merged.record(s)
        other = LatencyStat("o")
        for s in ys:
            other.record(s)
        merged.merge(other)
        combined = LatencyStat("c")
        for s in xs + ys:
            combined.record(s)
        assert (merged.count, merged.total, merged.min, merged.max) == (
            combined.count,
            combined.total,
            combined.min,
            combined.max,
        )


class TestHistogram:
    def test_fractions_sum_to_one(self):
        hist = Histogram("h")
        hist.record(1, 3)
        hist.record(2, 1)
        assert hist.total == 4
        assert abs(sum(hist.fractions([1, 2])) - 1.0) < 1e-12

    def test_missing_key_fraction_zero(self):
        assert Histogram("h").fraction(5) == 0.0


class TestStatsGroup:
    def test_lazily_creates_named_stats(self):
        group = StatsGroup("g")
        group.counter("x").add(2)
        group.latency("y").record(7)
        assert group.counter("x").value == 2
        assert group.counter("x") is group.counter("x")

    def test_as_dict_flattens(self):
        group = StatsGroup("g")
        group.counter("hits").add(3)
        group.latency("lat").record(10)
        flat = group.as_dict()
        assert flat["hits"] == 3
        assert flat["lat.total"] == 10
        assert flat["lat.mean"] == 10.0
