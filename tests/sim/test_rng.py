"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import derive_seed, stream


def test_same_inputs_same_seed():
    assert derive_seed(7, "a") == derive_seed(7, "a")


def test_different_tags_different_seeds():
    assert derive_seed(7, "a") != derive_seed(7, "b")


def test_different_roots_different_seeds():
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_streams_are_reproducible():
    a = stream(7, "x")
    b = stream(7, "x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent():
    a = stream(7, "x")
    b = stream(7, "y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
