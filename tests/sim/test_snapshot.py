"""Checkpoint file format: framing, validation, atomicity, controller."""

import os
import pickle

import pytest

from repro.sim.snapshot import (
    _DIGEST_LEN,
    _HEADER,
    FORMAT_MAGIC,
    FORMAT_VERSION,
    CheckpointController,
    CheckpointError,
    dumps_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def _payload():
    return {"version": FORMAT_VERSION, "now": 1234, "gpus": [{"x": 1}]}


class TestFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(_payload(), path)
        assert load_checkpoint(path) == _payload()

    def test_frame_layout(self):
        data = dumps_checkpoint(_payload())
        magic, version, length = _HEADER.unpack_from(data)
        assert magic == FORMAT_MAGIC
        assert version == FORMAT_VERSION
        assert len(data) == _HEADER.size + _DIGEST_LEN + length

    def test_no_temp_files_left(self, tmp_path):
        save_checkpoint(_payload(), tmp_path / "a.ckpt")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.ckpt"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")


class TestValidation:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"RC")
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "a.ckpt"
        data = dumps_checkpoint(_payload())
        path.write_bytes(data[:-3])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "a.ckpt"
        data = dumps_checkpoint(_payload())
        path.write_bytes(b"XXXX" + data[4:])
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "a.ckpt"
        blob = pickle.dumps(_payload())
        import hashlib

        data = (
            _HEADER.pack(FORMAT_MAGIC, FORMAT_VERSION + 9, len(blob))
            + hashlib.sha256(blob).digest()
            + blob
        )
        path.write_bytes(data)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_bit_flip_fails_digest(self, tmp_path):
        path = tmp_path / "a.ckpt"
        data = bytearray(dumps_checkpoint(_payload()))
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path)

    def test_non_dict_payload_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(dumps_checkpoint(["not", "a", "dict"]))
        with pytest.raises(CheckpointError, match="invalid payload"):
            load_checkpoint(path)


class TestController:
    def test_requires_directory(self):
        from repro.config import SystemConfig
        from repro.gpu.system import MultiGPUSystem

        system = MultiGPUSystem(SystemConfig(num_gpus=1))
        with pytest.raises(CheckpointError, match="directory"):
            CheckpointController(system, workload=None, every=100, directory=None)

    def test_checkpoint_names_sort_by_cycle(self, tmp_path):
        # zero-padded cycle numbers keep lexicographic == chronological.
        from repro.sim.snapshot import CheckpointController as C

        assert "ckpt-000000001000.ckpt" < "ckpt-000000010000.ckpt"
        assert C.RETRY_DELAY > 0

    def test_run_requires_dir_via_system(self, tmp_path):
        from repro.config import SystemConfig
        from repro.gpu.system import MultiGPUSystem
        from repro.workloads.base import Workload

        wl = Workload(name="w", traces=[[[(10, 1, False)]]])
        system = MultiGPUSystem(SystemConfig(num_gpus=1))
        with pytest.raises(CheckpointError):
            system.run(wl, checkpoint_every=100, checkpoint_dir=None)
