"""Unit tests for Resource / Store / Gate."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Gate, Resource, Store


class TestResource:
    def test_grants_up_to_capacity(self):
        engine = Engine()
        res = Resource(engine, 2)
        first = res.request()
        second = res.request()
        third = res.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_wakes_fifo(self):
        engine = Engine()
        res = Resource(engine, 1)
        res.request()
        order = []
        for tag in ("a", "b"):
            res.request().add_callback(lambda _e, t=tag: order.append(t))
        res.release()
        engine.run()
        assert order == ["a"]
        res.release()
        engine.run()
        assert order == ["a", "b"]

    def test_release_without_request_raises(self):
        engine = Engine()
        res = Resource(engine, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_idle_count(self):
        engine = Engine()
        res = Resource(engine, 3)
        res.request()
        assert res.idle == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), 0)

    def test_handoff_keeps_in_use_constant(self):
        engine = Engine()
        res = Resource(engine, 1)
        res.request()
        res.request()  # queued
        res.release()  # direct hand-off
        assert res.in_use == 1


class TestStore:
    def test_put_then_get(self):
        engine = Engine()
        store = Store(engine)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_waits_for_put(self):
        engine = Engine()
        store = Store(engine)
        got = store.get()
        assert not got.triggered
        store.put("y")
        engine.run()
        assert got.value == "y"

    def test_fifo_order(self):
        engine = Engine()
        store = Store(engine)
        for item in (1, 2, 3):
            store.put(item)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_capacity_backpressure(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        assert store.put("a").triggered
        blocked = store.put("b")
        assert not blocked.triggered
        assert store.get().value == "a"
        engine.run()
        assert blocked.triggered
        assert store.get().value == "b"

    def test_try_put_respects_capacity(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")

    def test_try_get(self):
        engine = Engine()
        store = Store(engine)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put(7)
        ok, item = store.try_get()
        assert ok and item == 7

    def test_try_get_unblocks_putter(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        store.put("a")
        blocked = store.put("b")
        ok, item = store.try_get()
        assert ok and item == "a"
        engine.run()
        assert blocked.triggered

    def test_waiting_getter_receives_direct_handoff(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        got = store.get()
        store.put("z")
        engine.run()
        assert got.value == "z"
        assert len(store) == 0


class TestGate:
    def test_open_gate_passes_immediately(self):
        engine = Engine()
        gate = Gate(engine, open_=True)
        assert gate.wait().triggered

    def test_closed_gate_blocks_until_open(self):
        engine = Engine()
        gate = Gate(engine, open_=False)
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        engine.run()
        assert ev.triggered

    def test_reclose_blocks_new_waiters(self):
        engine = Engine()
        gate = Gate(engine, open_=True)
        gate.close()
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        engine.run()
        assert ev.triggered

    def test_open_releases_all_waiters(self):
        engine = Engine()
        gate = Gate(engine, open_=False)
        events = [gate.wait() for _ in range(10)]
        gate.open()
        engine.run()
        assert all(e.triggered for e in events)
