"""Unit tests for the trace recorder (ring buffer, record format)."""

from __future__ import annotations

import json

from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACER, NullTracer, TraceRecord, TraceRecorder


def test_record_line_is_canonical_json():
    record = TraceRecord(3, 120, "walk.done", "gpu0.gmmu", 42,
                         (("kind", "demand"), ("levels", 4), ("ok", True)))
    line = record.to_line()
    assert line == (
        '{"seq":3,"cycle":120,"event":"walk.done","unit":"gpu0.gmmu",'
        '"vpn":42,"kind":"demand","levels":4,"ok":true}'
    )
    # Valid JSON, and parses back to the same values.
    parsed = json.loads(line)
    assert parsed["vpn"] == 42 and parsed["ok"] is True


def test_record_without_vpn_omits_field():
    record = TraceRecord(0, 5, "fault.batch", "uvm", None, (("count", 7),))
    assert json.loads(record.to_line()) == {
        "seq": 0, "cycle": 5, "event": "fault.batch", "unit": "uvm", "count": 7,
    }


def test_record_list_field_renders_as_json_array():
    record = TraceRecord(0, 1, "dir.lookup", "d", 9, (("holders", [0, 2]),))
    assert json.loads(record.to_line())["holders"] == [0, 2]


def test_recorder_stamps_engine_time():
    engine = Engine()
    tracer = TraceRecorder()
    engine.attach_tracer(tracer)
    assert engine.tracer is tracer

    engine.schedule(10, lambda: tracer.emit("tick", "unit_a", 1))
    engine.schedule(25, lambda: tracer.emit("tock", "unit_b"))
    engine.run()
    records = tracer.records()
    assert [(r.cycle, r.event) for r in records] == [(10, "tick"), (25, "tock")]
    assert [r.seq for r in records] == [0, 1]


def test_ring_buffer_drops_oldest_beyond_capacity():
    tracer = TraceRecorder(capacity=3)
    for i in range(5):
        tracer.emit("e", "u", i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r.vpn for r in tracer.records()] == [2, 3, 4]
    # seq keeps counting globally even as old records fall out.
    assert [r.seq for r in tracer.records()] == [2, 3, 4]


def test_unbounded_recorder():
    tracer = TraceRecorder(capacity=None)
    for i in range(1000):
        tracer.emit("e", "u", i)
    assert len(tracer) == 1000 and tracer.dropped == 0


def test_clear_resets_everything():
    tracer = TraceRecorder()
    tracer.emit("e", "u")
    tracer.clear()
    assert len(tracer) == 0
    tracer.emit("e", "u")
    assert tracer.records()[0].seq == 0


def test_null_tracer_is_disabled_noop():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.emit("e", "u", 1, extra=2)  # must not raise
    assert len(NULL_TRACER) == 0


def test_engine_defaults_to_null_tracer():
    assert Engine().tracer is NULL_TRACER


def test_engine_constructor_binds_tracer():
    tracer = TraceRecorder()
    engine = Engine(tracer=tracer)
    engine.schedule(7, lambda: tracer.emit("e", "u"))
    engine.run()
    assert tracer.records()[0].cycle == 7
