"""Unit tests for the radix page table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory import pte
from repro.memory.address import LAYOUT_4K
from repro.memory.page_table import PageTable

vpns = st.integers(min_value=0, max_value=2**36 - 1)


class TestMappings:
    def test_absent_vpn_translates_to_none(self):
        assert PageTable(LAYOUT_4K).translate(0x123) is None

    def test_set_and_translate(self):
        table = PageTable(LAYOUT_4K)
        table.set_entry(0x123, pte.make_pte(0x456))
        word = table.translate(0x123)
        assert word is not None and pte.ppn(word) == 0x456

    def test_invalidate_keeps_stale_word(self):
        """Lazy invalidation (§6.3) relies on the stale entry remaining
        in the table with its valid bit cleared."""
        table = PageTable(LAYOUT_4K)
        table.set_entry(5, pte.make_pte(9))
        assert table.invalidate(5) is True
        assert table.translate(5) is None
        stale = table.entry(5)
        assert stale is not None and pte.ppn(stale) == 9

    def test_invalidate_absent_returns_false(self):
        assert PageTable(LAYOUT_4K).invalidate(1) is False

    def test_invalidate_twice_second_is_unnecessary(self):
        table = PageTable(LAYOUT_4K)
        table.set_entry(5, pte.make_pte(9))
        assert table.invalidate(5) is True
        assert table.invalidate(5) is False

    def test_drop_removes_entry(self):
        table = PageTable(LAYOUT_4K)
        table.set_entry(5, pte.make_pte(9))
        table.drop(5)
        assert table.entry(5) is None

    def test_valid_vpns_iterates_only_valid(self):
        table = PageTable(LAYOUT_4K)
        table.set_entry(1, pte.make_pte(10))
        table.set_entry(2, pte.make_pte(20))
        table.invalidate(2)
        assert list(table.valid_vpns()) == [1]

    @given(st.dictionaries(vpns, st.integers(min_value=0, max_value=2**40 - 1), max_size=50))
    def test_translate_matches_reference(self, mapping):
        table = PageTable(LAYOUT_4K)
        for vpn, ppn_value in mapping.items():
            table.set_entry(vpn, pte.make_pte(ppn_value))
        for vpn, ppn_value in mapping.items():
            word = table.translate(vpn)
            assert word is not None and pte.ppn(word) == ppn_value


class TestWalkGeometry:
    def test_cold_walk_costs_all_levels(self):
        table = PageTable(LAYOUT_4K)
        assert table.walk_levels(0x123) == 4

    def test_cached_level_reduces_accesses(self):
        table = PageTable(LAYOUT_4K)
        assert table.walk_levels(0x123, cached_level=1) == 1
        assert table.walk_levels(0x123, cached_level=3) == 3

    def test_node_id_distinguishes_levels(self):
        table = PageTable(LAYOUT_4K)
        a = table.node_id(0x123, 1)
        b = table.node_id(0x123, 2)
        assert a != b
