"""Unit tests for the page-walk cache."""

import pytest

from repro.memory.address import LAYOUT_4K
from repro.memory.walk_cache import PageWalkCache


def make_pwc(entries=8):
    return PageWalkCache(entries, LAYOUT_4K)


class TestLookup:
    def test_cold_miss(self):
        pwc = make_pwc()
        assert pwc.deepest_cached_level(0x12345) is None

    def test_fill_then_leaf_hit(self):
        pwc = make_pwc()
        pwc.fill(0x12345)
        assert pwc.deepest_cached_level(0x12345) == 1

    def test_sibling_page_shares_leaf_node(self):
        """Two VPNs differing only in the leaf index share the L1 node —
        the basis of IRMB batch amortisation (§6.3)."""
        pwc = make_pwc()
        base = 0x40 << 9
        pwc.fill(base | 0x01)
        assert pwc.deepest_cached_level(base | 0x1FF) == 1

    def test_distant_page_hits_upper_level_only(self):
        pwc = make_pwc(entries=16)
        pwc.fill(0x1 << 9)
        # same L2 node (same vpn>>18) but different leaf node
        other = (0x2 << 9)
        assert pwc.deepest_cached_level(other) == 2

    def test_unrelated_page_misses(self):
        pwc = make_pwc()
        pwc.fill(0)
        far = 0x7 << 27  # differs even at the root-child level
        assert pwc.deepest_cached_level(far) is None


class TestReplacement:
    def test_lru_eviction(self):
        pwc = make_pwc(entries=3)
        pwc.fill(0x0 << 9)  # occupies 3 tags (levels 3, 2, 1)
        pwc.fill(0x1 << 9)  # same upper levels, new leaf tag -> evicts LRU
        assert pwc.stats.counter("evictions").value >= 1

    def test_probe_refreshes_lru(self):
        pwc = PageWalkCache(2, LAYOUT_4K)
        pwc.fill(0x0, down_to_level=1)  # inserts 3 tags into 2 slots
        assert len(pwc) == 2

    def test_invalidate_all(self):
        pwc = make_pwc()
        pwc.fill(0x123)
        pwc.invalidate_all()
        assert len(pwc) == 0
        assert pwc.deepest_cached_level(0x123) is None

    def test_capacity_bound_holds(self):
        pwc = make_pwc(entries=5)
        for i in range(100):
            pwc.fill(i << 9)
        assert len(pwc) <= 5

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            PageWalkCache(0, LAYOUT_4K)


class TestStats:
    def test_hit_rate(self):
        pwc = make_pwc()
        pwc.deepest_cached_level(1)  # miss
        pwc.fill(1)
        pwc.deepest_cached_level(1)  # hit
        assert pwc.hit_rate() == 0.5
