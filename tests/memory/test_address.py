"""Unit tests for virtual-address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import LAYOUT_2M, LAYOUT_4K, AddressLayout

vpns = st.integers(min_value=0, max_value=2**36 - 1)


class TestLayoutConstruction:
    def test_4k_layout(self):
        assert LAYOUT_4K.offset_bits == 12
        assert LAYOUT_4K.levels == 4

    def test_2m_layout(self):
        assert LAYOUT_2M.offset_bits == 21
        assert LAYOUT_2M.levels == 3

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            AddressLayout(page_size=3000)

    def test_zero_levels_rejected(self):
        with pytest.raises(ValueError):
            AddressLayout(page_size=4096, levels=0)


class TestVPNMath:
    def test_vpn_of_va(self):
        assert LAYOUT_4K.vpn(0x12345000) == 0x12345

    def test_va_roundtrip(self):
        assert LAYOUT_4K.va(0x12345, 0xABC) == 0x12345ABC

    def test_page_base(self):
        assert LAYOUT_4K.page_base(0x12345ABC) == 0x12345000

    @given(vpns, st.integers(min_value=0, max_value=4095))
    def test_vpn_va_roundtrip_property(self, vpn, offset):
        assert LAYOUT_4K.vpn(LAYOUT_4K.va(vpn, offset)) == vpn


class TestLevelIndices:
    def test_level_index_extracts_nine_bit_chunks(self):
        vpn = (0x1 << 27) | (0x2 << 18) | (0x3 << 9) | 0x4
        assert LAYOUT_4K.level_index(vpn, 4) == 0x1
        assert LAYOUT_4K.level_index(vpn, 3) == 0x2
        assert LAYOUT_4K.level_index(vpn, 2) == 0x3
        assert LAYOUT_4K.level_index(vpn, 1) == 0x4

    def test_level_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LAYOUT_4K.level_index(0, 5)
        with pytest.raises(ValueError):
            LAYOUT_4K.level_index(0, 0)

    def test_indices_root_to_leaf(self):
        vpn = (0x1 << 27) | (0x2 << 18) | (0x3 << 9) | 0x4
        assert LAYOUT_4K.indices(vpn) == [0x1, 0x2, 0x3, 0x4]

    @given(vpns)
    def test_indices_reassemble_vpn(self, vpn):
        indices = LAYOUT_4K.indices(vpn)
        rebuilt = 0
        for idx in indices:
            rebuilt = (rebuilt << 9) | idx
        assert rebuilt == vpn


class TestPrefixesAndIRMBFields:
    @given(vpns)
    def test_prefix_level1_strips_leaf_index(self, vpn):
        assert LAYOUT_4K.prefix(vpn, 1) == vpn >> 9

    @given(vpns)
    def test_irmb_base_offset_partition_vpn(self, vpn):
        base = LAYOUT_4K.irmb_base(vpn)
        offset = LAYOUT_4K.irmb_offset(vpn)
        assert (base << 9) | offset == vpn
        assert 0 <= offset < 512

    @given(vpns, vpns)
    def test_same_base_means_same_leaf_node(self, a, b):
        if LAYOUT_4K.irmb_base(a) == LAYOUT_4K.irmb_base(b):
            assert LAYOUT_4K.prefix(a, 1) == LAYOUT_4K.prefix(b, 1)
