"""Unit tests for the PTE bit layout, including the in-PTE directory bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import pte

ppns = st.integers(min_value=0, max_value=2**40 - 1)
gpu_ids = st.integers(min_value=0, max_value=63)


class TestBasicPTE:
    def test_make_pte_is_valid(self):
        word = pte.make_pte(0x1234)
        assert pte.is_valid(word)
        assert pte.ppn(word) == 0x1234
        assert not pte.is_remote(word)

    def test_clear_and_set_valid(self):
        word = pte.make_pte(5)
        cleared = pte.clear_valid(word)
        assert not pte.is_valid(cleared)
        assert pte.ppn(cleared) == 5  # stale PPN preserved (lazy invalidation)
        assert pte.is_valid(pte.set_valid(cleared))

    def test_writable_flag(self):
        assert pte.make_pte(1, writable=True) & pte.PTE_WRITABLE
        assert not (pte.make_pte(1, writable=False) & pte.PTE_WRITABLE)

    @given(ppns)
    def test_ppn_roundtrip(self, ppn_value):
        assert pte.ppn(pte.make_pte(ppn_value)) == ppn_value


class TestRemoteMapping:
    def test_remote_pte_carries_owner(self):
        word = pte.make_remote_pte(0x99, owner_gpu=3)
        assert pte.is_remote(word)
        assert pte.remote_gpu(word) == 3
        assert pte.ppn(word) == 0x99

    @given(ppns, st.integers(min_value=0, max_value=7))
    def test_remote_roundtrip(self, ppn_value, owner):
        word = pte.make_remote_pte(ppn_value, owner)
        assert pte.remote_gpu(word) == owner
        assert pte.ppn(word) == ppn_value
        assert pte.is_valid(word)

    @given(ppns, st.integers(min_value=8, max_value=31))
    def test_large_owner_hint_wraps_modulo_8(self, ppn_value, owner):
        """The 3-bit owner field is a debugging hint; large GPU ids wrap
        (the true owner always comes from the PPN range)."""
        word = pte.make_remote_pte(ppn_value, owner)
        assert pte.remote_gpu(word) == owner % 8
        assert pte.ppn(word) == ppn_value  # PPN never corrupted


class TestDirectoryBits:
    def test_fresh_pte_has_no_directory_bits(self):
        assert pte.directory_bits(pte.make_pte(1)) == 0

    def test_set_bit_uses_modular_hash(self):
        word = pte.make_pte(1)
        word = pte.set_directory_bit(word, gpu_id=3, num_bits=11)
        assert pte.directory_bits(word, 11) == 1 << 3

    def test_hash_aliases_beyond_num_bits(self):
        """§6.2: h(gpu) = gpu % m — GPU 11 aliases onto bit 0 with m=11."""
        word = pte.make_pte(1)
        word = pte.set_directory_bit(word, gpu_id=11, num_bits=11)
        assert pte.directory_bits(word, 11) == 1 << 0

    def test_four_bit_directory(self):
        word = pte.make_pte(1)
        word = pte.set_directory_bit(word, gpu_id=6, num_bits=4)
        assert pte.directory_bits(word, 4) == 1 << 2

    def test_clear_directory_bits_preserves_rest(self):
        word = pte.make_remote_pte(0x1234, 2)
        dirty = pte.set_directory_bit(word, 5)
        cleared = pte.clear_directory_bits(dirty)
        assert cleared == word

    def test_with_directory_bits(self):
        word = pte.with_directory_bits(pte.make_pte(1), 0b101)
        assert pte.directory_bits(word) == 0b101

    def test_directory_bits_do_not_corrupt_ppn(self):
        word = pte.make_pte(2**40 - 1)
        for gpu in range(16):
            word = pte.set_directory_bit(word, gpu)
        assert pte.ppn(word) == 2**40 - 1
        assert pte.is_valid(word)

    def test_invalid_num_bits_rejected(self):
        with pytest.raises(ValueError):
            pte.directory_bits(0, num_bits=0)
        with pytest.raises(ValueError):
            pte.set_directory_bit(0, 0, num_bits=12)

    @given(gpu_ids, st.integers(min_value=1, max_value=11))
    def test_set_bit_never_false_negative(self, gpu, num_bits):
        """Aliasing may add spurious holders but the setting GPU's own
        hashed bit is always observable — false positives only (§6.2)."""
        word = pte.set_directory_bit(pte.make_pte(1), gpu, num_bits)
        bits = pte.directory_bits(word, num_bits)
        assert bits & (1 << (gpu % num_bits))
