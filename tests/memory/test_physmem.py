"""Unit tests for the per-GPU frame allocator."""

import pytest

from repro.memory.physmem import MemoryExhausted, PhysicalMemory


def make_mem(gpu_id=0, frames=4):
    return PhysicalMemory(gpu_id, capacity_bytes=frames * 4096, page_size=4096)


class TestAllocation:
    def test_allocate_tracks_residency(self):
        mem = make_mem()
        ppn = mem.allocate(vpn=0x42)
        assert mem.vpn_of(ppn) == 0x42
        assert mem.frames_in_use == 1

    def test_ppns_are_globally_disjoint_per_gpu(self):
        a = make_mem(gpu_id=0).allocate(1)
        b = make_mem(gpu_id=1).allocate(1)
        assert PhysicalMemory.owner_of(a) == 0
        assert PhysicalMemory.owner_of(b) == 1
        assert a != b

    def test_exhaustion_raises(self):
        mem = make_mem(frames=2)
        mem.allocate(1)
        mem.allocate(2)
        with pytest.raises(MemoryExhausted):
            mem.allocate(3)

    def test_free_recycles_frames(self):
        mem = make_mem(frames=1)
        ppn = mem.allocate(1)
        mem.free(ppn)
        assert mem.frames_free == 1
        assert mem.allocate(2) == ppn

    def test_free_unknown_ppn_raises(self):
        with pytest.raises(KeyError):
            make_mem().free(12345)

    def test_owner_of_large_gpu_id(self):
        mem = PhysicalMemory(31, capacity_bytes=4096, page_size=4096)
        assert PhysicalMemory.owner_of(mem.allocate(1)) == 31

    def test_table2_capacity(self):
        """Table 2: 4 GB of device memory = 1 Mi 4-KB frames."""
        mem = PhysicalMemory(0, 4 * 1024**3, 4096)
        assert mem.capacity_frames == 1024 * 1024
