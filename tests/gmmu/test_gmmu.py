"""Unit tests for the GMMU: walk latency, queueing, contention, aborts."""

from repro.config import GMMUConfig
from repro.gmmu.gmmu import GMMU
from repro.gmmu.request import WalkKind
from repro.memory import pte
from repro.memory.address import LAYOUT_4K
from repro.memory.page_table import PageTable
from repro.sim.engine import Engine


def make_gmmu(walkers=2, queue=4, pwc=128):
    engine = Engine()
    table = PageTable(LAYOUT_4K)
    config = GMMUConfig(
        walker_threads=walkers,
        walk_latency_per_level=100,
        walk_cache_entries=pwc,
        walk_queue_entries=queue,
    )
    return engine, table, GMMU(engine, config, table)


class TestDemandWalks:
    def test_cold_walk_costs_four_levels(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(0x123, pte.make_pte(7))
        request = gmmu.walk(0x123, WalkKind.DEMAND)
        engine.run()
        assert request.done.value == pte.make_pte(7)
        assert engine.now == 400

    def test_warm_walk_hits_pwc(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(0x123, pte.make_pte(7))
        gmmu.walk(0x123, WalkKind.DEMAND)
        engine.run()
        t0 = engine.now
        gmmu.walk(0x123, WalkKind.DEMAND)
        engine.run()
        assert engine.now - t0 == 100  # leaf-level PWC hit: one access

    def test_demand_walk_of_absent_pte_returns_none(self):
        engine, _table, gmmu = make_gmmu()
        request = gmmu.walk(0x5, WalkKind.DEMAND)
        engine.run()
        assert request.done.value is None

    def test_invalid_pte_translates_to_none(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(0x5, pte.clear_valid(pte.make_pte(9)))
        request = gmmu.walk(0x5, WalkKind.DEMAND)
        engine.run()
        assert request.done.value is None


class TestInvalidateAndUpdateWalks:
    def test_invalidate_clears_valid_bit(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(0x5, pte.make_pte(9))
        request = gmmu.walk(0x5, WalkKind.INVALIDATE)
        engine.run()
        assert request.was_valid is True
        assert table.translate(0x5) is None
        assert gmmu.stats.counter("invalidations.necessary").value == 1

    def test_unnecessary_invalidation_counted(self):
        engine, _table, gmmu = make_gmmu()
        gmmu.walk(0x5, WalkKind.INVALIDATE)
        engine.run()
        assert gmmu.stats.counter("invalidations.unnecessary").value == 1

    def test_update_installs_word(self):
        engine, table, gmmu = make_gmmu()
        gmmu.walk(0x5, WalkKind.UPDATE, word=pte.make_pte(3))
        engine.run()
        assert table.translate(0x5) == pte.make_pte(3)

    def test_aborted_invalidate_leaves_pte_alone(self):
        engine, table, gmmu = make_gmmu(walkers=1)
        table.set_entry(0x5, pte.make_pte(9))
        request = gmmu.walk(0x5, WalkKind.INVALIDATE)
        request.aborted = True
        engine.run()
        assert table.translate(0x5) is not None
        assert gmmu.stats.counter("aborted_walks").value == 1


class TestContention:
    def test_walker_threads_limit_parallelism(self):
        """With one walker, two cold walks serialise: 400 + 400 cycles."""
        engine, table, gmmu = make_gmmu(walkers=1, pwc=1)
        table.set_entry(0x0 << 9, pte.make_pte(1))
        far = 0x5 << 27 | 0x3 << 18  # shares no useful PWC tags
        table.set_entry(far, pte.make_pte(2))
        gmmu.walk(0x0 << 9, WalkKind.DEMAND)
        gmmu.walk(far, WalkKind.DEMAND)
        engine.run()
        assert engine.now >= 700  # second walk queued behind the first

    def test_parallel_walkers_overlap(self):
        engine, table, gmmu = make_gmmu(walkers=2, pwc=1)
        table.set_entry(0x0 << 9, pte.make_pte(1))
        far = 0x5 << 27 | 0x3 << 18
        table.set_entry(far, pte.make_pte(2))
        gmmu.walk(0x0 << 9, WalkKind.DEMAND)
        gmmu.walk(far, WalkKind.DEMAND)
        engine.run()
        assert engine.now <= 500

    def test_invalidations_delay_demand_walks(self):
        """The core §5.2 contention: invalidation walks occupy the same
        walker threads and queue slots as demand walks."""
        engine, table, gmmu = make_gmmu(walkers=1, pwc=1)
        for i in range(5):
            table.set_entry(i << 20, pte.make_pte(i))
        for i in range(5):
            gmmu.walk(i << 20, WalkKind.INVALIDATE)
        demand = gmmu.walk(0x7FFF << 20, WalkKind.DEMAND)
        engine.run()
        queue_wait = demand.started_at - demand.issued_at
        assert queue_wait > 0

    def test_queue_wait_recorded_per_kind(self):
        engine, table, gmmu = make_gmmu(walkers=1)
        table.set_entry(1, pte.make_pte(1))
        gmmu.walk(1, WalkKind.DEMAND)
        gmmu.walk(1, WalkKind.DEMAND)
        engine.run()
        assert gmmu.stats.latency("queue_wait.demand").count == 2
        assert gmmu.stats.latency("queue_wait.demand").max > 0


class TestIdleTracking:
    def test_idle_transitions(self):
        engine, table, gmmu = make_gmmu()
        assert gmmu.is_idle
        table.set_entry(1, pte.make_pte(1))
        gmmu.walk(1, WalkKind.DEMAND)
        assert not gmmu.is_idle
        engine.run()
        assert gmmu.is_idle

    def test_wait_idle_fires_on_drain(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(1, pte.make_pte(1))
        gmmu.walk(1, WalkKind.DEMAND)
        ev = gmmu.wait_idle()
        assert not ev.triggered
        engine.run()
        assert ev.triggered

    def test_invalidation_busy_cycles_accumulate(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(1, pte.make_pte(1))
        gmmu.walk(1, WalkKind.INVALIDATE)
        engine.run()
        assert gmmu.invalidation_busy_cycles() == 400
        assert gmmu.any_busy_cycles() == 400

    def test_demand_walks_do_not_count_as_inval_busy(self):
        engine, table, gmmu = make_gmmu()
        table.set_entry(1, pte.make_pte(1))
        gmmu.walk(1, WalkKind.DEMAND)
        engine.run()
        assert gmmu.invalidation_busy_cycles() == 0
        assert gmmu.any_busy_cycles() == 400
