"""Edge-case tests: walk-queue backpressure and burst behaviour."""

from repro.config import GMMUConfig
from repro.gmmu.gmmu import GMMU
from repro.gmmu.request import WalkKind
from repro.memory import pte
from repro.memory.address import LAYOUT_4K
from repro.memory.page_table import PageTable
from repro.sim.engine import Engine


def make_gmmu(walkers=1, queue=2):
    engine = Engine()
    table = PageTable(LAYOUT_4K)
    config = GMMUConfig(walker_threads=walkers, walk_queue_entries=queue)
    return engine, table, GMMU(engine, config, table)


class TestQueueBackpressure:
    def test_all_submissions_eventually_complete(self):
        """Submissions beyond the 64-entry queue defer but never drop."""
        engine, table, gmmu = make_gmmu(walkers=1, queue=2)
        requests = []
        for i in range(20):
            table.set_entry(i << 18, pte.make_pte(i))
            requests.append(gmmu.walk(i << 18, WalkKind.DEMAND))
        engine.run()
        assert all(r.done.triggered for r in requests)
        assert gmmu.stats.latency("total.demand").count == 20

    def test_fifo_service_order(self):
        engine, table, gmmu = make_gmmu(walkers=1, queue=2)
        order = []
        for i in range(6):
            table.set_entry(i << 18, pte.make_pte(i))
            request = gmmu.walk(i << 18, WalkKind.DEMAND)
            request.done.add_callback(lambda _e, i=i: order.append(i))
        engine.run()
        assert order == sorted(order)

    def test_queue_wait_grows_under_burst(self):
        engine, table, gmmu = make_gmmu(walkers=1, queue=4)
        for i in range(10):
            table.set_entry(i << 18, pte.make_pte(i))
            gmmu.walk(i << 18, WalkKind.DEMAND)
        engine.run()
        wait = gmmu.stats.latency("queue_wait.demand")
        assert wait.max > wait.min

    def test_mixed_kinds_share_the_same_queue(self):
        """An invalidation burst delays a later demand walk (§5.2)."""
        engine, table, gmmu = make_gmmu(walkers=1, queue=2)
        for i in range(8):
            table.set_entry(i << 18, pte.make_pte(i))
            gmmu.walk(i << 18, WalkKind.INVALIDATE)
        table.set_entry(0x7F << 18, pte.make_pte(1))
        demand = gmmu.walk(0x7F << 18, WalkKind.DEMAND)
        engine.run()
        assert demand.started_at - demand.issued_at >= 8 * 100

    def test_load_accounting(self):
        engine, table, gmmu = make_gmmu(walkers=2, queue=4)
        for i in range(6):
            table.set_entry(i << 18, pte.make_pte(i))
            gmmu.walk(i << 18, WalkKind.DEMAND)
        # Before the engine runs, submissions are queued or pending.
        assert gmmu.load >= 0
        engine.run()
        assert gmmu.load == 0
        assert gmmu.is_idle
