"""Unit tests for CSV/JSON export."""

import csv
import json

import pytest

from repro.metrics.collector import SimulationResult
from repro.metrics.export import (
    result_to_json,
    results_to_csv,
    series_to_csv,
    series_to_json,
)

SERIES = {
    "idyll": {"PR": 1.5, "KM": 1.2},
    "zero": {"PR": 1.8, "KM": 1.3, "BS": 1.0},
}


class TestSeriesExport:
    def test_csv_has_union_of_columns(self, tmp_path):
        path = tmp_path / "s.csv"
        series_to_csv(SERIES, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["series", "PR", "KM", "BS"]
        assert rows[1] == ["idyll", "1.5", "1.2", ""]
        assert rows[2][0] == "zero"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "s.json"
        series_to_json(SERIES, path)
        assert json.loads(path.read_text()) == SERIES


class TestResultExport:
    def test_result_to_json(self, tmp_path):
        result = SimulationResult("PR", "idyll", 4, exec_time=123, migrations=7)
        path = tmp_path / "r.json"
        result_to_json(result, path)
        doc = json.loads(path.read_text())
        assert doc["exec_time"] == 123
        assert doc["migrations"] == 7
        assert doc["workload"] == "PR"

    def test_results_to_csv(self, tmp_path):
        results = [
            SimulationResult("PR", "idyll", 4, exec_time=1),
            SimulationResult("KM", "broadcast", 4, exec_time=2),
        ]
        path = tmp_path / "rs.csv"
        results_to_csv(results, path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 2
        assert rows[0]["workload"] == "PR"
        assert "extras" not in rows[0]

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            results_to_csv([], tmp_path / "x.csv")
