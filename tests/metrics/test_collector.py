"""Unit tests for metric collection and report formatting."""

from dataclasses import replace

from repro.config import baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.metrics.collector import SimulationResult
from repro.metrics.report import format_series, format_table, geomean, mean
from repro.workloads.base import Workload

PAGE = 1 << 20


def run_small():
    config = replace(baseline_config(num_gpus=2), trace_lanes=1, inflight_per_cu=4)
    trace0 = [(10, PAGE + 512 * i, False) for i in range(20)]
    trace1 = [(10, PAGE + 512 * i, i % 3 == 0) for i in range(20)]
    workload = Workload(name="mini", traces=[[trace0], [trace1]])
    return MultiGPUSystem(config).run(workload)


class TestCollector:
    def test_basic_fields_populated(self):
        result = run_small()
        assert result.workload == "mini"
        assert result.num_gpus == 2
        assert result.exec_time > 0
        assert result.accesses == 40
        assert result.instructions > 0
        assert result.far_faults > 0
        assert result.mpki > 0

    def test_tlb_counts_consistent(self):
        result = run_small()
        assert result.l1_hits + result.l1_misses > 0
        assert result.l2_misses <= result.l1_misses

    def test_demand_latency_mean_consistent(self):
        result = run_small()
        if result.demand_miss_count:
            expected = result.demand_miss_total_latency / result.demand_miss_count
            assert abs(result.demand_miss_mean_latency - expected) < 1e-9

    def test_speedup_over(self):
        result = run_small()
        faster = SimulationResult("w", "s", 2, exec_time=result.exec_time // 2)
        assert abs(faster.speedup_over(result) - 2.0) < 0.01

    def test_unnecessary_fraction(self):
        r = SimulationResult("w", "s", 2)
        r.inval_received_necessary = 6
        r.inval_received_unnecessary = 2
        assert r.inval_received_total == 8
        assert r.unnecessary_fraction == 0.25

    def test_zero_division_guards(self):
        r = SimulationResult("w", "s", 2)
        assert r.speedup_over(r) == 0.0
        assert r.unnecessary_fraction == 0.0


class TestReport:
    def test_mean_and_geomean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-12
        assert mean([]) == 0.0
        assert geomean([]) == 0.0

    def test_geomean_ignores_nonpositive(self):
        assert abs(geomean([2.0, 0.0, -1.0, 8.0]) - 4.0) < 1e-12

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 3.25]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "2.500" in text
        assert "xyz" in text

    def test_format_series_appends_average(self):
        text = format_series(
            "S", {"idyll": {"A": 2.0, "B": 4.0}}, apps=["A", "B"]
        )
        assert "Avg" in text
        assert "3.000" in text
