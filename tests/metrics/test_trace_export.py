"""Trace exporter tests: JSONL round trip and Chrome trace_event shape."""

from __future__ import annotations

import json

from repro.metrics.trace_export import trace_lines, trace_to_chrome, trace_to_jsonl
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder


def _sample_recorder() -> TraceRecorder:
    tracer = TraceRecorder()
    engine = Engine(tracer=tracer)
    engine.schedule(10, lambda: tracer.emit("tlb.miss", "gpu0.l1tlb0", 101))
    engine.schedule(
        410,
        lambda: tracer.emit("walk.done", "gpu0.gmmu", 101, kind="demand", levels=4, cycles=400),
    )
    engine.schedule(500, lambda: tracer.emit("fault.batch", "uvm", count=3))
    engine.run()
    return tracer


def test_jsonl_file_round_trips(tmp_path):
    tracer = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    count = trace_to_jsonl(tracer, path)
    assert count == 3
    text = path.read_text()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert lines == trace_lines(tracer)
    parsed = [json.loads(line) for line in lines]
    assert [p["event"] for p in parsed] == ["tlb.miss", "walk.done", "fault.batch"]


def test_jsonl_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert trace_to_jsonl(TraceRecorder(), path) == 0
    assert path.read_text() == ""


def test_chrome_trace_shape(tmp_path):
    tracer = _sample_recorder()
    path = tmp_path / "trace.json"
    count = trace_to_chrome(tracer, path)
    assert count == 3
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]

    miss, walk, batch = events
    # Instant event at its cycle.
    assert miss["ph"] == "i" and miss["ts"] == 10
    assert miss["pid"] == "gpu0" and miss["tid"] == "gpu0.l1tlb0"
    assert miss["args"]["vpn"] == 101
    # walk.done carries a duration: rendered as a complete slice that
    # *ends* at the record cycle.
    assert walk["ph"] == "X" and walk["dur"] == 400 and walk["ts"] == 10
    # Host-side components group under one pid.
    assert batch["pid"] == "host" and batch["args"]["count"] == 3
