"""Unit tests for the replica directory (§7.4)."""

from repro.uvm.replication import ReplicaDirectory


class TestReplicaDirectory:
    def test_add_and_query(self):
        replicas = ReplicaDirectory()
        replicas.add_replica(1, gpu_id=2, ppn=0x99)
        assert replicas.has_replica(1, 2)
        assert replicas.replica_ppn(1, 2) == 0x99
        assert replicas.holders(1) == [2]
        assert replicas.is_replicated(1)

    def test_unreplicated_page(self):
        replicas = ReplicaDirectory()
        assert not replicas.is_replicated(5)
        assert replicas.holders(5) == []
        assert not replicas.has_replica(5, 0)

    def test_collapse_returns_and_clears(self):
        replicas = ReplicaDirectory()
        replicas.add_replica(1, 0, 10)
        replicas.add_replica(1, 3, 13)
        collapsed = replicas.collapse(1)
        assert collapsed == {0: 10, 3: 13}
        assert not replicas.is_replicated(1)
        assert replicas.stats.counter("collapses").value == 1
        assert replicas.stats.counter("replicas_destroyed").value == 2

    def test_collapse_empty_is_noop(self):
        replicas = ReplicaDirectory()
        assert replicas.collapse(1) == {}
        assert replicas.stats.counter("collapses").value == 0

    def test_pages_are_independent(self):
        replicas = ReplicaDirectory()
        replicas.add_replica(1, 0, 10)
        replicas.add_replica(2, 1, 21)
        replicas.collapse(1)
        assert replicas.is_replicated(2)
