"""Integration-style unit tests for the UVM driver, driven by hand-built
traces through a tiny 2-GPU system."""

from dataclasses import replace

from repro.config import InvalidationScheme, MigrationPolicy, baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.memory import pte
from repro.memory.physmem import PhysicalMemory
from repro.workloads.base import Workload


def tiny_config(**overrides):
    config = replace(
        baseline_config(num_gpus=2),
        trace_lanes=1,
        inflight_per_cu=4,
    )
    return replace(config, **overrides) if overrides else config


def run_traces(config, gpu0_trace, gpu1_trace, name="manual"):
    workload = Workload(name=name, traces=[[gpu0_trace], [gpu1_trace]])
    system = MultiGPUSystem(config)
    result = system.run(workload)
    return system, result


PAGE = 1 << 20  # an arbitrary VPN


class TestFirstTouchFromCPU:
    def test_first_access_migrates_page_in(self):
        system, result = run_traces(tiny_config(), [(0, PAGE, False)], [])
        assert result.first_touch_migrations == 1
        assert result.far_faults == 1
        word = system.gpus[0].page_table.translate(PAGE)
        assert word is not None
        assert PhysicalMemory.owner_of(pte.ppn(word)) == 0

    def test_repeat_access_faults_once(self):
        trace = [(0, PAGE, False)] * 10
        _system, result = run_traces(tiny_config(), trace, [])
        assert result.far_faults == 1
        assert result.local_accesses == 10

    def test_host_page_table_records_mapping(self):
        system, _ = run_traces(tiny_config(), [(0, PAGE, False)], [])
        host_word = system.driver.host_page_table.translate(PAGE)
        assert host_word is not None
        assert PhysicalMemory.owner_of(pte.ppn(host_word)) == 0


class TestRemoteMapping:
    def test_second_gpu_gets_remote_mapping(self):
        # GPU1's accesses are few enough to stay under the threshold.
        system, result = run_traces(
            tiny_config(),
            [(0, PAGE, False)] * 4,
            [(2000, PAGE, False)],  # delayed: GPU0 owns the page by then
        )
        assert result.migrations == 0
        word = system.gpus[1].page_table.translate(PAGE)
        assert word is not None and pte.is_remote(word)
        assert result.remote_accesses >= 1

    def test_remote_data_travels_nvlink(self):
        _system, result = run_traces(
            tiny_config(), [(0, PAGE, False)], [(2000, PAGE, False)]
        )
        assert result.nvlink_bytes > 0


class TestCounterMigration:
    def test_threshold_triggers_migration(self):
        threshold = tiny_config().uvm.effective_threshold
        remote = [(2000 + 500 * i, PAGE, False) for i in range(threshold + 6)]
        system, result = run_traces(tiny_config(), [(0, PAGE, False)], remote)
        assert result.migrations == 1
        host_word = system.driver.host_page_table.translate(PAGE)
        assert PhysicalMemory.owner_of(pte.ppn(host_word)) == 1

    def test_migration_invalidates_old_owner(self):
        threshold = tiny_config().uvm.effective_threshold
        remote = [(2000 + 500 * i, PAGE, False) for i in range(threshold + 6)]
        system, result = run_traces(tiny_config(), [(0, PAGE, False)], remote)
        assert result.invalidations_sent > 0
        assert system.gpus[0].page_table.translate(PAGE) is None

    def test_migration_waiting_recorded(self):
        threshold = tiny_config().uvm.effective_threshold
        remote = [(2000 + 500 * i, PAGE, False) for i in range(threshold + 6)]
        system, _result = run_traces(tiny_config(), [(0, PAGE, False)], remote)
        waiting = system.driver.stats.latency("migration_waiting")
        assert waiting.count == 1
        assert waiting.mean > 0


class TestPolicies:
    def test_first_touch_pins_page(self):
        config = tiny_config(migration_policy=MigrationPolicy.FIRST_TOUCH)
        remote = [(2000 + 500 * i, PAGE, False) for i in range(20)]
        system, result = run_traces(config, [(0, PAGE, False)], remote)
        assert result.migrations == 0
        host_word = system.driver.host_page_table.translate(PAGE)
        assert PhysicalMemory.owner_of(pte.ppn(host_word)) == 0

    def test_on_touch_migrates_on_fault(self):
        config = tiny_config(migration_policy=MigrationPolicy.ON_TOUCH)
        system, result = run_traces(
            config, [(0, PAGE, False)], [(4000, PAGE, False)]
        )
        assert result.migrations == 1
        host_word = system.driver.host_page_table.translate(PAGE)
        assert PhysicalMemory.owner_of(pte.ppn(host_word)) == 1


class TestInvalidationSchemes:
    def _migration_traces(self, config):
        threshold = config.uvm.effective_threshold
        remote = [(2000 + 500 * i, PAGE, False) for i in range(threshold + 6)]
        return [(0, PAGE, False)] * 3, remote

    def test_broadcast_reaches_every_gpu(self):
        config = tiny_config()
        t0, t1 = self._migration_traces(config)
        _system, result = run_traces(config, t0, t1)
        assert result.invalidations_sent == config.num_gpus * result.migrations

    def test_directory_filters_to_holders(self):
        config = tiny_config(invalidation_scheme=InvalidationScheme.DIRECTORY)
        t0, t1 = self._migration_traces(config)
        _system, result = run_traces(config, t0, t1)
        # Both GPUs held mappings here, but never more than the holders.
        assert 0 < result.invalidations_sent <= config.num_gpus * result.migrations

    def test_zero_latency_sends_no_messages(self):
        config = tiny_config(invalidation_scheme=InvalidationScheme.ZERO_LATENCY)
        t0, t1 = self._migration_traces(config)
        system, result = run_traces(config, t0, t1)
        assert result.migrations == 1
        assert result.invalidations_sent == 0
        assert system.gpus[0].page_table.translate(PAGE) is None

    def test_idyll_buffers_then_cancels_or_walks(self):
        config = tiny_config(invalidation_scheme=InvalidationScheme.IDYLL)
        t0, t1 = self._migration_traces(config)
        system, result = run_traces(config, t0, t1)
        assert result.migrations == 1
        accepted = sum(
            g.lazy.stats.counter("accepted").value for g in system.gpus if g.lazy
        )
        assert accepted >= 1


class TestReplication:
    def test_read_sharing_creates_replica(self):
        config = tiny_config(page_replication=True)
        system, result = run_traces(
            config, [(0, PAGE, False)] * 3, [(3000, PAGE, False)] * 3
        )
        assert result.replications == 1
        word = system.gpus[1].page_table.translate(PAGE)
        assert word is not None
        assert PhysicalMemory.owner_of(pte.ppn(word)) == 1  # local replica

    def test_write_collapses_replicas(self):
        config = tiny_config(page_replication=True)
        trace0 = [(0, PAGE, False)] * 3 + [(9000, PAGE, True)]
        trace1 = [(3000, PAGE, False)] * 3
        system, result = run_traces(config, trace0, trace1)
        assert result.replications >= 1
        assert result.replica_collapses >= 1
        assert not system.driver.replicas.is_replicated(PAGE)

    def test_no_migrations_under_replication(self):
        config = tiny_config(page_replication=True)
        remote = [(2000 + 400 * i, PAGE, False) for i in range(20)]
        _system, result = run_traces(config, [(0, PAGE, False)], remote)
        assert result.migrations == 0


class TestFaultBatching:
    def test_many_concurrent_faults_batch(self):
        pages = [PAGE + 512 * i for i in range(24)]
        trace = [(0, vpn, False) for vpn in pages]
        system, result = run_traces(tiny_config(), trace, [])
        assert result.far_faults == 24
        batches = system.driver.stats.counter("fault_batches").value
        assert 1 <= batches < 24  # coalescing happened
