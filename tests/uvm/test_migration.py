"""Unit tests for access counters and policy decisions."""

from repro.config import MigrationPolicy, UVMConfig
from repro.uvm.migration import AccessCounters, should_migrate_on_fault


def make_counters(threshold=256, divisor=64):
    return AccessCounters(
        UVMConfig(access_counter_threshold=threshold, threshold_divisor=divisor)
    )


class TestAccessCounters:
    def test_threshold_fires_exactly_once(self):
        counters = make_counters(threshold=256, divisor=64)  # effective 4
        hits = [counters.note_remote_access(1, 0) for _ in range(10)]
        assert hits == [False, False, False, True] + [False] * 6

    def test_counters_are_per_gpu(self):
        counters = make_counters(threshold=256, divisor=128)  # effective 2
        assert not counters.note_remote_access(1, gpu_id=0)
        assert not counters.note_remote_access(1, gpu_id=1)
        assert counters.note_remote_access(1, gpu_id=0)
        assert counters.count(1, 0) == 2
        assert counters.count(1, 1) == 1

    def test_reset_page_clears_all_gpus(self):
        counters = make_counters(threshold=256, divisor=128)
        counters.note_remote_access(1, 0)
        counters.note_remote_access(1, 1)
        counters.reset_page(1)
        assert counters.count(1, 0) == 0
        assert counters.count(1, 1) == 0
        # Threshold can fire again after the reset.
        counters.note_remote_access(1, 0)
        assert counters.note_remote_access(1, 0)

    def test_effective_threshold_floor_is_one(self):
        counters = make_counters(threshold=1, divisor=1000)
        assert counters.note_remote_access(1, 0)  # fires immediately

    def test_paper_threshold_ratio_preserved(self):
        """Fig. 20: 256 vs 512 must stay a 1:2 effective ratio."""
        t256 = make_counters(256, 128).threshold
        t512 = make_counters(512, 128).threshold
        assert t512 == 2 * t256


class TestPolicyDecision:
    def test_on_touch_migrates_on_remote_fault(self):
        assert should_migrate_on_fault(MigrationPolicy.ON_TOUCH, True)

    def test_on_touch_local_fault_no_migration(self):
        assert not should_migrate_on_fault(MigrationPolicy.ON_TOUCH, False)

    def test_counter_policy_never_migrates_on_fault(self):
        assert not should_migrate_on_fault(MigrationPolicy.ACCESS_COUNTER, True)

    def test_first_touch_never_migrates_on_fault(self):
        assert not should_migrate_on_fault(MigrationPolicy.FIRST_TOUCH, True)
