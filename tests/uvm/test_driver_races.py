"""Race-condition regression tests for the UVM driver.

These encode the two liveness/coherence bugs found during development:
the on-touch reply/migration livelock, and the stale-reply window where
a fault resolution could deliver a mapping a concurrent migration had
already invalidated.
"""

from dataclasses import replace

from repro.config import MigrationPolicy, baseline_config
from repro.gpu.system import MultiGPUSystem
from repro.memory import pte
from repro.memory.physmem import PhysicalMemory
from repro.workloads.base import Workload

PAGE = 1 << 20


def tiny_config(**overrides):
    config = replace(
        baseline_config(num_gpus=2), trace_lanes=1, inflight_per_cu=4
    )
    return replace(config, **overrides) if overrides else config


class TestOnTouchLivelock:
    def test_concurrent_faults_to_one_page_terminate(self):
        """Two GPUs hammering one page under on-touch must not ping-pong
        the resolution loop forever (bounded MAX_REPLY_RETRIES)."""
        config = tiny_config(migration_policy=MigrationPolicy.ON_TOUCH)
        trace0 = [(50 * i, PAGE, False) for i in range(15)]
        trace1 = [(50 * i + 25, PAGE, True) for i in range(15)]
        workload = Workload(name="race", traces=[[trace0], [trace1]])
        result = MultiGPUSystem(config).run(workload)
        assert result.accesses == 30

    def test_many_hot_pages_on_touch_terminates(self):
        config = tiny_config(migration_policy=MigrationPolicy.ON_TOUCH)
        pages = [PAGE + 512 * i for i in range(4)]
        trace0 = [(30 * i, pages[i % 4], False) for i in range(40)]
        trace1 = [(30 * i + 10, pages[(i + 1) % 4], True) for i in range(40)]
        workload = Workload(name="race", traces=[[trace0], [trace1]])
        result = MultiGPUSystem(config).run(workload)
        assert result.accesses == 80


class TestStaleReplyRetry:
    def test_reply_generation_check_prevents_stale_mapping(self):
        """A mapping delivered after a concurrent migration must point at
        the page's *current* home (or the GPU must have been invalidated
        by the time the run drains)."""
        threshold = tiny_config().uvm.effective_threshold
        # GPU1 drives a migration while GPU0's traffic keeps faulting.
        trace0 = [(400 * i, PAGE, False) for i in range(12)]
        trace1 = [(150 * i, PAGE, False) for i in range(threshold * 6)]
        workload = Workload(name="race", traces=[[trace0], [trace1]])
        system = MultiGPUSystem(tiny_config())
        system.run(workload)
        host_word = system.driver.host_page_table.translate(PAGE)
        home = PhysicalMemory.owner_of(pte.ppn(host_word))
        for gpu in system.gpus:
            word = gpu.page_table.translate(PAGE)
            if word is not None:
                assert PhysicalMemory.owner_of(pte.ppn(word)) == home

    def test_retry_counter_visible_in_stats(self):
        """Under heavy same-page contention, retried or accepted stale
        replies are accounted (never silently dropped)."""
        threshold = tiny_config().uvm.effective_threshold
        trace0 = [(100 * i, PAGE, False) for i in range(threshold * 10)]
        trace1 = [(100 * i + 50, PAGE, False) for i in range(threshold * 10)]
        workload = Workload(name="race", traces=[[trace0], [trace1]])
        system = MultiGPUSystem(tiny_config())
        result = system.run(workload)
        retried = system.driver.stats.counter("stale_replies_retried").value
        accepted = system.driver.stats.counter("stale_replies_accepted").value
        assert retried >= 0 and accepted >= 0
        assert result.accesses == threshold * 20
