"""Unit tests for the DNN workload generators (§7.6)."""

import pytest

from repro.workloads.dnn import (
    DNN_MODELS,
    RESNET18_LAYERS,
    VGG16_LAYERS,
    LayerSpec,
    build_dnn_workload,
)


class TestArchitectures:
    def test_vgg16_has_16_layers(self):
        # 13 conv + 3 fc
        assert len(VGG16_LAYERS) == 16

    def test_resnet18_layer_count(self):
        # conv1 + 8 basic blocks x 2 convs + fc
        assert len(RESNET18_LAYERS) == 18

    def test_tiny_imagenet_head(self):
        assert VGG16_LAYERS[-1].out_c == 200
        assert RESNET18_LAYERS[-1].out_c == 200

    def test_layer_page_math(self):
        layer = LayerSpec("conv", 56, 56, 256, 3, 128)
        # batch 4, fp16, shrink 1: 4*56*56*256*2 bytes / 4096
        assert layer.activation_pages(batch=4, shrink=1) == 4 * 56 * 56 * 256 * 2 // 4096
        assert layer.weight_pages(shrink=1) == 3 * 3 * 128 * 256 * 2 // 4096

    def test_shrink_never_zero_pages(self):
        layer = LayerSpec("small", 1, 1, 8, 1, 8)
        assert layer.activation_pages(batch=1, shrink=10**9) == 1
        assert layer.weight_pages(shrink=10**9) == 1


class TestTraceGeneration:
    @pytest.mark.parametrize("model", sorted(DNN_MODELS))
    def test_builds_for_both_models(self, model):
        w = build_dnn_workload(model, num_gpus=4, lanes=2, accesses_per_lane=200)
        assert w.num_gpus == 4
        assert w.total_accesses() > 0
        assert all(len(t) <= 200 for gpu in w.traces for t in gpu)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_dnn_workload("AlexNet")

    def test_boundary_activations_are_shared(self):
        """Layer-parallel training shares boundary activations between
        adjacent GPUs — the migration traffic §7.6 relies on."""
        w = build_dnn_workload("VGG16", num_gpus=4, lanes=2, accesses_per_lane=400)
        assert w.shared_access_fraction() > 0.05

    def test_deterministic(self):
        a = build_dnn_workload("ResNet18", num_gpus=2, lanes=2, accesses_per_lane=100, seed=5)
        b = build_dnn_workload("ResNet18", num_gpus=2, lanes=2, accesses_per_lane=100, seed=5)
        assert a.traces == b.traces
