"""Unit tests for the Table-3 application suite."""

import pytest

from repro.workloads.suite import (
    APP_ORDER,
    APPS,
    FIG1_APPS,
    PAGES_PER_LEAF_NODE,
    build_workload,
    dilate,
)


class TestRegistry:
    def test_all_nine_apps_present(self):
        assert sorted(APPS) == sorted(["KM", "PR", "BS", "MM", "MT", "SC", "ST", "C2D", "IM"])
        assert set(APP_ORDER) == set(APPS)

    def test_fig1_subset(self):
        assert FIG1_APPS == ["MT", "MM", "PR", "ST", "SC", "KM"]

    def test_paper_metadata(self):
        assert APPS["MT"].paper_mpki == 185.52
        assert APPS["PR"].suite == "Hetero-Mark"
        assert APPS["ST"].pattern == "adjacent"

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            build_workload("NOPE")


class TestDilation:
    def test_neighbours_share_leaf_node(self):
        assert dilate(0) >> 9 == dilate(PAGES_PER_LEAF_NODE - 1) >> 9

    def test_cluster_boundary_changes_node(self):
        assert dilate(0) >> 9 != dilate(PAGES_PER_LEAF_NODE) >> 9

    def test_dilation_is_injective(self):
        vpns = [dilate(i) for i in range(5000)]
        assert len(set(vpns)) == 5000


class TestBuiltTraces:
    @pytest.mark.parametrize("app", APP_ORDER)
    def test_every_app_builds(self, app):
        w = build_workload(app, num_gpus=2, lanes=2, accesses_per_lane=100)
        assert w.num_gpus == 2
        assert w.total_accesses() == 2 * 2 * 100
        assert w.footprint_pages() > 0

    def test_deterministic_per_seed(self):
        a = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=50, seed=3)
        b = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=50, seed=3)
        assert a.traces == b.traces

    def test_different_seed_different_trace(self):
        a = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=50, seed=3)
        b = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=50, seed=4)
        assert a.traces != b.traces

    def test_scale_grows_footprint(self):
        small = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=200, scale=0.5)
        big = build_workload("PR", num_gpus=2, lanes=2, accesses_per_lane=200, scale=2.0)
        assert big.params["footprint_pages"] > small.params["footprint_pages"]

    def test_large_pages_coarsen_vpns(self):
        w4k = build_workload("KM", num_gpus=2, lanes=2, accesses_per_lane=200)
        w2m = build_workload(
            "KM", num_gpus=2, lanes=2, accesses_per_lane=200, page_size=2 * 1024 * 1024
        )
        assert w2m.footprint_pages() < w4k.footprint_pages()

    @pytest.mark.parametrize("gpus", [2, 4, 8])
    def test_scales_to_gpu_counts(self, gpus):
        w = build_workload("ST", num_gpus=gpus, lanes=2, accesses_per_lane=50)
        assert len(w.traces) == gpus


class TestPaperCharacteristics:
    def test_sharing_patterns_match_fig4(self):
        """High-sharing apps (MM, PR, KM) must have most accesses to
        pages shared by all four GPUs; MT concentrates on 2-GPU pages."""
        for app in ("MM", "PR", "KM"):
            w = build_workload(app, num_gpus=4, lanes=4, accesses_per_lane=600)
            dist = w.sharing_distribution()
            assert dist.get(4, 0) > 0.3, f"{app}: {dist}"
        mt = build_workload("MT", num_gpus=4, lanes=4, accesses_per_lane=600)
        dist = mt.sharing_distribution()
        assert dist.get(2, 0) > 0.15, dist

    def test_write_intensity_ordering(self):
        """§7.4: IM and C2D are write-intensive; PR, ST, SC read-heavy."""
        def wf(app):
            return build_workload(app, num_gpus=4, lanes=2, accesses_per_lane=400).write_fraction()

        assert wf("IM") > 0.4
        assert wf("C2D") > 0.4
        assert wf("PR") < 0.3
        assert wf("SC") < 0.3

    def test_mpki_rank_roughly_preserved(self):
        """MT must be the most translation-intensive; BS the least
        (Table 3) — compare by gap (compute intensity) as a fast proxy."""
        assert APPS["MT"].mean_gap == min(a.mean_gap for a in APPS.values())
        assert APPS["BS"].mean_gap == max(a.mean_gap for a in APPS.values())
