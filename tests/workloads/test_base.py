"""Unit tests for workload representation and trace analysis."""

import pytest

from repro.workloads.base import Workload, partition_pages


def make_workload():
    return Workload(
        name="t",
        traces=[
            [[(0, 1, False), (5, 2, True)]],       # GPU0: pages 1, 2
            [[(0, 2, False), (3, 3, False)]],      # GPU1: pages 2, 3
        ],
    )


class TestAnalyses:
    def test_totals(self):
        w = make_workload()
        assert w.num_gpus == 2
        assert w.total_accesses() == 4
        assert w.total_instructions() == 4 + 5 + 3
        assert w.footprint_pages() == 3
        assert w.footprint_bytes() == 3 * 4096

    def test_write_fraction(self):
        assert make_workload().write_fraction() == 0.25

    def test_page_sharers(self):
        sharers = make_workload().page_sharers()
        assert sharers[1] == {0}
        assert sharers[2] == {0, 1}
        assert sharers[3] == {1}

    def test_sharing_distribution(self):
        dist = make_workload().sharing_distribution()
        # Pages 1 and 3: one access each, one sharer; page 2: two accesses.
        assert dist[1] == 0.5
        assert dist[2] == 0.5
        assert abs(sum(dist.values()) - 1.0) < 1e-12

    def test_shared_access_fraction(self):
        assert make_workload().shared_access_fraction() == 0.5

    def test_empty_workload(self):
        w = Workload(name="empty", traces=[[[]], [[]]])
        assert w.sharing_distribution() == {}
        assert w.write_fraction() == 0.0


class TestPartitioning:
    def test_even_partition(self):
        parts = partition_pages(100, 8, 4)
        assert [list(p) for p in parts] == [
            [100, 101],
            [102, 103],
            [104, 105],
            [106, 107],
        ]

    def test_remainder_goes_to_last(self):
        parts = partition_pages(0, 10, 3)
        assert len(parts[0]) == 3
        assert len(parts[2]) == 4

    def test_too_few_pages_rejected(self):
        with pytest.raises(ValueError):
            partition_pages(0, 2, 4)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ValueError):
            partition_pages(0, 8, 0)


class TestTraceBuffer:
    """Columnar trace storage must be a drop-in for tuple lists."""

    RECORDS = [(0, 10, False), (5, 11, True), (2, 10, False)]

    def test_from_records_round_trips(self):
        from repro.workloads.base import TraceBuffer

        buf = TraceBuffer.from_records(self.RECORDS)
        assert len(buf) == 3
        assert list(buf) == self.RECORDS
        assert buf[1] == (5, 11, True)
        assert isinstance(buf[1][2], bool)

    def test_equality_with_lists_and_buffers(self):
        from repro.workloads.base import TraceBuffer

        buf = TraceBuffer.from_records(self.RECORDS)
        assert buf == self.RECORDS
        assert buf == TraceBuffer.from_records(self.RECORDS)
        assert buf != TraceBuffer.from_records(self.RECORDS[:2])

    def test_mismatched_columns_rejected(self):
        from array import array

        from repro.workloads.base import TraceBuffer

        with pytest.raises(ValueError):
            TraceBuffer(array("q", [1]), array("q", [1, 2]), bytearray(1))

    def test_workload_coerces_tuple_lists(self):
        from repro.workloads.base import TraceBuffer

        w = make_workload()
        for gpu in w.traces:
            for trace in gpu:
                assert isinstance(trace, TraceBuffer)
        assert w.total_accesses() == 4
