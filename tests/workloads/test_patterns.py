"""Unit tests for access-pattern primitives."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import patterns


def rng():
    return random.Random(42)


PAGES = list(range(100, 164))


class TestStreaming:
    def test_count_and_pages(self):
        trace = patterns.streaming(rng(), PAGES, 50, mean_gap=10, write_ratio=0.0)
        assert len(trace) == 50
        assert all(vpn in PAGES for _g, vpn, _w in trace)

    def test_run_length_groups_accesses(self):
        trace = patterns.streaming(rng(), PAGES, 12, 0, 0.0, run_length=4)
        vpns = [vpn for _g, vpn, _w in trace]
        assert vpns[0:4] == [vpns[0]] * 4
        assert vpns[4:8] == [vpns[4]] * 4
        assert vpns[0] != vpns[4]

    def test_sequential_order(self):
        trace = patterns.streaming(rng(), PAGES, 5, 0, 0.0, run_length=1)
        vpns = [vpn for _g, vpn, _w in trace]
        assert vpns == PAGES[:5]

    def test_start_fraction_offsets_stream(self):
        trace = patterns.streaming(rng(), PAGES, 3, 0, 0.0, start_fraction=0.5)
        assert trace[0][1] == PAGES[32]

    def test_wraps_around(self):
        trace = patterns.streaming(rng(), PAGES[:4], 10, 0, 0.0, run_length=1)
        vpns = [vpn for _g, vpn, _w in trace]
        assert vpns[4] == PAGES[0]

    def test_write_ratio_extremes(self):
        all_writes = patterns.streaming(rng(), PAGES, 20, 0, 1.0)
        no_writes = patterns.streaming(rng(), PAGES, 20, 0, 0.0)
        assert all(w for _g, _v, w in all_writes)
        assert not any(w for _g, _v, w in no_writes)

    def test_empty_pages_rejected(self):
        with pytest.raises(ValueError):
            patterns.streaming(rng(), [], 5, 0, 0.0)


class TestUniformRandom:
    def test_covers_page_set(self):
        trace = patterns.uniform_random(rng(), PAGES, 500, 0, 0.0)
        assert {vpn for _g, vpn, _w in trace} > set(PAGES[:10])

    def test_gap_jitter_bounded(self):
        trace = patterns.uniform_random(rng(), PAGES, 200, 10, 0.0)
        assert all(5 <= g <= 15 for g, _v, _w in trace)

    def test_zero_gap(self):
        trace = patterns.uniform_random(rng(), PAGES, 20, 0, 0.0)
        assert all(g == 0 for g, _v, _w in trace)


class TestStrided:
    def test_stride_applied(self):
        trace = patterns.strided(rng(), PAGES, 5, 0, 1.0, stride=7)
        indices = [PAGES.index(vpn) for _g, vpn, _w in trace]
        deltas = [(b - a) % len(PAGES) for a, b in zip(indices, indices[1:])]
        assert all(d == 7 for d in deltas)


class TestZipf:
    def test_head_is_hot(self):
        trace = patterns.zipf(rng(), PAGES, 2000, 0, 0.0, s=1.0, shuffle_seed=1)
        counts = {}
        for _g, vpn, _w in trace:
            counts[vpn] = counts.get(vpn, 0) + 1
        hottest = max(counts.values())
        assert hottest > 2000 / len(PAGES) * 3  # far above uniform

    def test_block_shuffle_keeps_spatial_clusters(self):
        """Hot pages come in contiguous blocks (IRMB merge locality)."""
        trace = patterns.zipf(rng(), PAGES, 4000, 0, 0.0, s=1.2, shuffle_seed=1, block=8)
        counts = {}
        for _g, vpn, _w in trace:
            counts[vpn] = counts.get(vpn, 0) + 1
        hottest = max(counts, key=counts.get)
        block_mates = [p for p in PAGES if p // 8 == hottest // 8 and p != hottest]
        mate_hits = sum(counts.get(p, 0) for p in block_mates)
        assert mate_hits > 0  # neighbours of the hot page are warm too

    def test_deterministic_under_seed(self):
        a = patterns.zipf(random.Random(1), PAGES, 50, 0, 0.0)
        b = patterns.zipf(random.Random(1), PAGES, 50, 0, 0.0)
        assert a == b


class TestPhasedHot:
    def test_owner_dominates_each_phase(self):
        trace = patterns.phased_hot(
            rng(), PAGES, 3000, 0, 0.0, gpu=1, num_gpus=4, phases=1, dominance=1.0
        )
        block = len(PAGES) // 4
        owned = set(PAGES[block: 2 * block])  # phase 0, gpu 1
        assert all(vpn in owned for _g, vpn, _w in trace)

    def test_affinity_rotates_between_phases(self):
        trace = patterns.phased_hot(
            rng(), PAGES, 2000, 0, 0.0, gpu=0, num_gpus=4, phases=2, dominance=1.0
        )
        first = {vpn for _g, vpn, _w in trace[:1000]}
        second = {vpn for _g, vpn, _w in trace[1000:]}
        assert first.isdisjoint(second)

    def test_count_exact(self):
        trace = patterns.phased_hot(rng(), PAGES, 997, 0, 0.0, 0, 4)
        assert len(trace) == 997


class TestMixed:
    def test_preserves_subtrace_order(self):
        a = [(0, 1, False), (0, 2, False), (0, 3, False)]
        b = [(0, 10, True), (0, 20, True)]
        merged = patterns.mixed(rng(), [a, b])
        assert len(merged) == 5
        a_part = [t for t in merged if t[1] < 10]
        b_part = [t for t in merged if t[1] >= 10]
        assert a_part == a
        assert b_part == b

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=4))
    def test_merged_length_is_sum(self, sizes):
        parts = [[(0, i * 100 + j, False) for j in range(n)] for i, n in enumerate(sizes)]
        merged = patterns.mixed(random.Random(0), parts)
        assert len(merged) == sum(sizes)
