"""Unit tests for trace serialisation."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.base import Workload
from repro.workloads.io import load_workload, save_workload
from repro.workloads.suite import build_workload


class TestRoundTrip:
    def test_generated_workload_roundtrips(self, tmp_path):
        original = build_workload("KM", num_gpus=2, lanes=2, accesses_per_lane=100)
        path = tmp_path / "km.json"
        save_workload(original, path)
        loaded = load_workload(path)
        assert loaded.name == original.name
        assert loaded.page_size == original.page_size
        assert loaded.traces == original.traces
        assert loaded.params == original.params

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 100), st.integers(0, 2**36), st.booleans()
                ),
                max_size=10,
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_arbitrary_traces_roundtrip(self, gpu_lanes):
        import tempfile
        from pathlib import Path

        original = Workload(name="x", traces=[gpu_lanes])
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "w.json"
            save_workload(original, path)
            assert load_workload(path).traces == original.traces

    def test_bad_format_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError):
            load_workload(path)

    def test_corrupt_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": 1, "name": "x", "page_size": 4096, "params": {},
            "gpus": [[{"gaps": [1, 2], "vpns": [3], "writes": [0, 1]}]],
        }))
        with pytest.raises(ValueError):
            load_workload(path)

    def test_loaded_workload_simulates(self, tmp_path):
        """A deserialised workload must be directly runnable."""
        from dataclasses import replace

        from repro.config import baseline_config
        from repro.gpu.system import MultiGPUSystem

        original = build_workload("SC", num_gpus=2, lanes=2, accesses_per_lane=80)
        path = tmp_path / "sc.json"
        save_workload(original, path)
        loaded = load_workload(path)
        config = replace(baseline_config(2), trace_lanes=2, inflight_per_cu=4)
        a = MultiGPUSystem(config).run(original)
        b = MultiGPUSystem(config).run(loaded)
        assert a.exec_time == b.exec_time
