"""Fig. 16: IDYLL with 16 and 32 page-table-walker threads (each
normalised to the baseline with the same thread count).

Paper: +60 % with 16 threads, +43.3 % with 32 — gains persist but shrink
as extra walkers dilute the contention IDYLL removes.
"""

from repro.experiments.figures import fig16_ptw_threads

from conftest import run_once, series_mean, show


def test_fig16_ptw_threads(benchmark, runner):
    series = run_once(benchmark, fig16_ptw_threads, runner)
    show(
        "Fig. 16 — IDYLL speedup with 16 / 32 walker threads",
        series,
        paper_note="avg +60% (16 threads), +43.3% (32 threads)",
    )
    sixteen = series_mean(series["16_threads"])
    thirty_two = series_mean(series["32_threads"])

    # IDYLL still helps with a beefier walker pool.
    assert sixteen > 1.0
    assert thirty_two > 0.99
    # More walkers reduce contention, so IDYLL's edge shrinks (or at
    # least does not grow) from 16 to 32 threads.
    assert thirty_two <= sixteen + 0.04
