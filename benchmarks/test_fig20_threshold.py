"""Fig. 20: access-counter threshold study (256 vs 512, scaled by the
trace-size divisor so the 1:2 ratio is preserved).

Paper: IDYLL-512 beats baseline-512 by ~30 % (less headroom than the
~69.9 % at threshold 256, because fewer migrations mean fewer
invalidations); baseline-512 is ~10 % *slower* than baseline-256 due to
extra remote accesses (NUMA overhead).
"""

from repro.experiments.figures import fig20_counter_threshold
from repro.metrics.report import mean

from conftest import run_once, series_mean, show


def test_fig20_threshold(benchmark, runner):
    series = run_once(benchmark, fig20_counter_threshold, runner)
    show(
        "Fig. 20 — threshold 256 vs 512 (all normalised to baseline-256)",
        series,
        paper_note="IDYLL-512 ~ +30% over baseline-512; baseline-512 ~0.9x baseline-256",
    )
    idyll_256 = series_mean(series["idyll_256"])
    idyll_512 = series_mean(series["idyll_512"])
    base_512 = series_mean(series["baseline_512"])

    # IDYLL helps at both thresholds.
    assert idyll_256 > 1.0
    assert idyll_512 > base_512
    # A larger threshold reduces the invalidation headroom: IDYLL's edge
    # over its own baseline shrinks at 512.
    gain_256 = idyll_256 / 1.0
    gain_512 = idyll_512 / max(1e-9, base_512)
    assert gain_512 <= gain_256 + 0.05
