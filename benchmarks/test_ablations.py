"""Ablation study of IDYLL's internal design choices (DESIGN.md):

* **no-merge** — IRMB entries hold a single VPN each (no spatial
  merging, no PWC amortisation on writeback batches);
* **no-bypass** — demand misses never consult the IRMB (stale local
  walks run to completion before faulting);
* **no-idle-writeback** — buffered invalidations only propagate on
  capacity evictions.

Each should cost part of IDYLL's benefit on a sharing-heavy workload;
none should invert the IDYLL-vs-baseline ordering by itself.
"""

from dataclasses import replace

from repro.config import InvalidationScheme, baseline_config
from repro.experiments.runner import default_runner
from repro.metrics.report import format_table, mean

ABLATION_APPS = ["PR", "KM", "IM"]


def run_ablations():
    runner = default_runner()
    idyll = baseline_config(4).with_scheme(InvalidationScheme.IDYLL)
    variants = {
        "idyll (full)": idyll,
        "no-merge": replace(idyll, irmb=replace(idyll.irmb, merge_enabled=False)),
        "no-bypass": replace(idyll, irmb_bypass_enabled=False),
        "no-idle-writeback": replace(idyll, lazy_idle_writeback=False),
    }
    table = {}
    for app in ABLATION_APPS:
        base = runner.run(app, baseline_config(4))
        table[app] = {
            label: runner.run(app, config).speedup_over(base)
            for label, config in variants.items()
        }
    return table


def test_ablations(benchmark):
    table = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    rows = [
        [label] + [table[app][label] for app in ABLATION_APPS]
        for label in next(iter(table.values()))
    ]
    print()
    print(format_table("IDYLL ablations (speedup vs baseline)", ["variant"] + ABLATION_APPS, rows))

    full = mean([table[a]["idyll (full)"] for a in ABLATION_APPS])
    # Full IDYLL still beats the baseline on these sharing-heavy apps.
    assert full > 1.0
    # No single ablation collapses IDYLL below ~baseline on average.
    for label in ("no-merge", "no-bypass", "no-idle-writeback"):
        ablated = mean([table[a][label] for a in ABLATION_APPS])
        assert ablated > 0.9, (label, ablated)
        # ...and none of them should *beat* the full design decisively.
        # (no-bypass can edge ahead at trace scale: our scaled-down far
        # faults are cheap enough that bypassing a stale walk saves less
        # than in the paper's system.)
        assert ablated <= full + 0.12, (label, ablated, full)
