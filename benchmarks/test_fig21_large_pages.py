"""Fig. 21: IDYLL with 2 MB pages (inputs enlarged to keep the VM
subsystem stressed, §7.3).

Paper: +36.3 % — less than at 4 KB (bigger TLB reach, fewer walks), but
large-page false sharing still produces plenty of invalidations,
especially for PR.
"""

from repro.experiments.figures import fig21_large_pages

from conftest import run_once, series_mean, show


def test_fig21_large_pages(benchmark, runner):
    series = run_once(benchmark, fig21_large_pages, runner)
    show(
        "Fig. 21 — IDYLL speedup with 2 MB pages",
        series,
        paper_note="avg +36.3% (vs +69.9% at 4 KB)",
    )
    avg = series_mean(series["idyll_2mb"])
    values = series["idyll_2mb"]
    # Large pages shrink IDYLL's headroom (bigger TLB reach, far fewer
    # walks) — at trace scale the average lands near break-even rather
    # than the paper's +36%, but IDYLL never collapses and still wins on
    # a plurality of applications.
    assert avg > 0.96
    assert all(v > 0.85 for v in values.values())
    assert sum(1 for v in values.values() if v >= 1.0) >= 3
