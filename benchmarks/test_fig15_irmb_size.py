"""Fig. 15: IDYLL sensitivity to IRMB geometry (bases, offsets).

Paper: (16,8) loses ~25 points vs the default (32,16); (64,16) gains
~7 points; the default is chosen as the sweet spot vs hardware cost.
"""

from repro.experiments.figures import fig15_irmb_sizes

from conftest import run_once, series_mean, show


def test_fig15_irmb_size(benchmark, runner):
    series = run_once(benchmark, fig15_irmb_sizes, runner)
    show(
        "Fig. 15 — IDYLL speedup by IRMB geometry (bases, offsets)",
        series,
        paper_note="(16,8) avg 1.45 < (32,16) avg 1.70 < (64,16) avg 1.77",
    )
    small = series_mean(series["(16,8)"])
    default = series_mean(series["(32,16)"])
    big = series_mean(series["(64,16)"])

    # All geometries still beat the baseline on average.
    assert small > 0.98
    # Bigger IRMBs never hurt on average; the ordering small <= default
    # <= big holds within noise.
    assert default >= small - 0.03
    assert big >= default - 0.03
    # The gap between the extremes is visible.
    assert big >= small
