"""Fig. 5: page-walker request mix — demand TLB misses vs necessary vs
unnecessary invalidation requests (baseline, broadcast shootdown).

Paper: invalidations are ~27.2 % of walker requests, and ~32 % of all
invalidations broadcast are unnecessary (sent to GPUs without a valid
mapping).
"""

from repro.experiments.figures import fig05_walker_request_mix
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig05_walker_request_mix(benchmark, runner):
    series = run_once(benchmark, fig05_walker_request_mix, runner)
    show(
        "Fig. 5 — walker request mix (fractions)",
        series,
        paper_note="invalidations ~27.2% of requests; ~32% of them unnecessary",
    )

    apps = list(series["tlb_miss"])
    for app in apps:
        total = (
            series["tlb_miss"][app]
            + series["necessary_inval"][app]
            + series["unnecessary_inval"][app]
        )
        assert abs(total - 1.0) < 1e-9, app

    inval_share = [
        series["necessary_inval"][a] + series["unnecessary_inval"][a] for a in apps
    ]
    # Invalidations are a substantial minority of walker traffic.
    assert 0.05 < mean(inval_share) < 0.6
    # Broadcasting makes a visible fraction of them unnecessary.
    unnecessary_of_inval = [
        series["unnecessary_inval"][a]
        / max(1e-12, series["necessary_inval"][a] + series["unnecessary_inval"][a])
        for a in apps
        if series["necessary_inval"][a] + series["unnecessary_inval"][a] > 0
    ]
    assert mean(unnecessary_of_inval) > 0.1
    # Sharing-heavy apps have a higher invalidation share than BS.
    share = dict(zip(apps, inval_share))
    assert share["PR"] > share["BS"]
    assert share["KM"] > share["BS"]
