"""Fig. 2: migration-policy study, normalised to access-counter-based
migration (the baseline policy of NVIDIA A100s).

Paper: zero-latency invalidation gives 1.38x-2.92x (avg 1.73x); on-touch
and first-touch generally perform *worse* than counter-based migration.

Reproduced shape: zero-latency invalidation clearly above 1 on
sharing-heavy apps; on-touch below 1 (ping-pong).  Known scale artifact
(documented in EXPERIMENTS.md): with the scaled-down counter threshold,
migrations amortise over far fewer subsequent accesses than in the
paper's full-length runs, so first-touch — which avoids migrations
entirely — can come out ahead here.
"""

from repro.experiments.figures import fig02_migration_policies

from conftest import run_once, series_mean, show


def test_fig02_migration_policies(benchmark, runner):
    series = run_once(benchmark, fig02_migration_policies, runner)
    show(
        "Fig. 2 — policies relative to access-counter migration",
        series,
        paper_note="zero-latency-invalidation avg 1.73x; on-touch/first-touch below baseline",
    )
    zero = series["zero-latency-invalidation"]
    on_touch = series["on-touch"]

    # Eliminating invalidation overheads helps on average...
    assert series_mean(zero) > 1.0
    # ...and noticeably on the sharing-heavy applications.
    assert zero["PR"] > 1.1
    # On-touch ping-pong migration loses to counter-based migration.
    assert series_mean(on_touch) < 1.0
