"""Fig. 19: IDYLL restricted to 4 in-PTE directory bits on 8/16/32-GPU
systems — hash aliasing produces more false-positive invalidation
targets, degrading the In-PTE filter but not Lazy Invalidation.

Paper: still +56.5 % / +57.1 % / +70.1 % for 8 / 16 / 32 GPUs.
"""

from repro.experiments.figures import fig19_unused_bits

from conftest import run_once, series_mean, show


def test_fig19_unused_bits(benchmark, runner):
    series = run_once(benchmark, fig19_unused_bits, runner)
    show(
        "Fig. 19 — IDYLL with 4 directory bits, by GPU count",
        series,
        paper_note="avg +56.5% (8), +57.1% (16), +70.1% (32 GPUs)",
    )
    for label, values in series.items():
        # Even with heavy aliasing, lazy invalidation keeps IDYLL ahead.
        assert series_mean(values) > 0.99, (label, values)
