"""Fig. 17: IDYLL with a 2048-entry, 64-way L2 TLB.

Paper: +61.4 % — a bigger TLB holds more translations, but migration
shootdowns keep flushing it, so IDYLL's benefit persists.
"""

from repro.experiments.figures import fig17_l2_tlb_2048

from conftest import run_once, series_mean, show


def test_fig17_l2tlb(benchmark, runner):
    series = run_once(benchmark, fig17_l2_tlb_2048, runner)
    show(
        "Fig. 17 — IDYLL speedup with a 2048-entry L2 TLB",
        series,
        paper_note="avg +61.4% (vs +69.9% with the 512-entry TLB)",
    )
    avg = series_mean(series["2048_entry"])
    # The benefit persists with 4x the TLB reach.
    assert avg > 1.0
    # Sharing-heavy applications still gain individually.
    assert series["2048_entry"]["PR"] > 1.03
