"""§6.3 / §6.4 hardware-overhead claims (the paper's CACTI-backed
numbers, reproduced with the analytical area model)."""

from repro.config import IRMBConfig, TLBConfig, VMCacheConfig
from repro.core.area import area_report, vm_table_footprint_fraction
from repro.experiments.runner import default_runner


def compute_report():
    report = area_report(IRMBConfig(), TLBConfig(512, 16, 10), VMCacheConfig())
    runner = default_runner()
    footprint = runner.workload("PR").footprint_bytes()
    return report, vm_table_footprint_fraction(footprint)


def test_overheads(benchmark):
    report, vm_frac = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    print()
    print("== §6.3/§6.4 hardware overheads ==")
    print(f"IRMB size:            {report.irmb_bytes:.0f} B   (paper: 720 B)")
    print(f"IRMB vs L2 TLB area:  {report.irmb_vs_l2_tlb:.4f} (paper: ~0.009)")
    print(f"VM-Cache size:        {report.vm_cache_bytes:.0f} B   (paper: 480 B)")
    print(f"VM-Cache vs CPU L1:   {report.vm_cache_vs_cpu_l1:.5f} (paper: ~0.0004)")
    print(f"VM-Table / footprint: {vm_frac:.5f} (paper: ~0.002)")

    assert report.irmb_bytes == 720.0
    assert report.vm_cache_bytes == 480.0
    assert report.irmb_vs_l2_tlb < 0.05
    assert report.vm_cache_vs_cpu_l1 < 0.005
    assert vm_frac < 0.005
