"""Shared fixtures for the figure/table benchmarks.

All benches share one :class:`ExperimentRunner` so common runs (the
4-GPU baseline, full IDYLL, …) are simulated once per session.  Trace
sizes come from REPRO_LANES / REPRO_ACCESSES (defaults 4 / 1200).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
reproduced rows next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import default_runner
from repro.metrics.report import format_series, mean
from repro.workloads.suite import APP_ORDER


@pytest.fixture(scope="session")
def runner():
    return default_runner()


def run_once(benchmark, fn, *args):
    """Benchmark a figure function with a single measured round."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def show(title: str, series, apps=None, paper_note: str = ""):
    """Print the figure's series in the paper's layout."""
    apps = apps or APP_ORDER
    print()
    print(format_series(title, series, apps))
    if paper_note:
        print(f"paper: {paper_note}")


def series_mean(series_values) -> float:
    return mean(list(series_values.values()))
