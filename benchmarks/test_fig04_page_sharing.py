"""Fig. 4: distribution of accesses referencing shared pages.

Paper: MM, PR, KM access pages shared by (almost) all 4 GPUs; MT, C2D,
BS concentrate on pages shared by 2 GPUs.
"""

from repro.experiments.figures import fig04_page_sharing

from conftest import run_once, show


def test_fig04_page_sharing(benchmark, runner):
    series = run_once(benchmark, fig04_page_sharing, runner)
    show(
        "Fig. 4 — fraction of accesses to pages shared by k GPUs",
        series,
        paper_note="MM/PR/KM dominated by 4-GPU sharing; MT/C2D/BS by 2-GPU",
    )

    for app in ("MM", "PR", "KM"):
        total = sum(series[f"shared_by_{k}"][app] for k in range(1, 5))
        assert abs(total - 1.0) < 1e-9
    # Sharing-by-all dominates the high-sharing applications.
    for app in ("MM", "PR", "KM"):
        shared = sum(series[f"shared_by_{k}"][app] for k in (2, 3, 4))
        assert shared > 0.5, app
        assert series["shared_by_4"][app] > series["shared_by_4"]["BS"]
    # MT/BS concentrate on two-GPU sharing relative to four-GPU sharing.
    for app in ("MT", "BS"):
        assert series["shared_by_2"][app] > series["shared_by_4"][app], app
