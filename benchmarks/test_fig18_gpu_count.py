"""Fig. 18: IDYLL on 8- and 16-GPU systems (same input size, so more
GPUs = more sharing = more invalidations).

Paper: +75.3 % (8 GPUs) and +79.1 % (16 GPUs) — the benefit grows with
system size, though sub-linearly (hash aliasing on the directory bits).
"""

from repro.experiments.figures import fig18_gpu_scaling

from conftest import run_once, series_mean, show


def test_fig18_gpu_count(benchmark, runner):
    series = run_once(benchmark, fig18_gpu_scaling, runner)
    show(
        "Fig. 18 — IDYLL speedup on 8 / 16 GPUs",
        series,
        paper_note="avg +75.3% (8 GPUs), +79.1% (16 GPUs)",
    )
    eight = series_mean(series["8_gpus"])
    sixteen = series_mean(series["16_gpus"])

    # IDYLL keeps delivering as the system scales.
    assert eight > 1.0
    assert sixteen > 1.0
    # The benefit does not collapse with more GPUs.  (The paper's *growth*
    # from 8 to 16 is not fully reproduced: our 16-GPU traces are tapered
    # to stay tractable, which also shrinks per-GPU sharing intensity —
    # see EXPERIMENTS.md.)
    assert sixteen > eight - 0.15
