"""Fig. 6: demand TLB miss latency when invalidation contention is
removed (zero-latency invalidation), normalised to baseline.

Paper: removing invalidations cuts demand TLB miss latency by ~55.8 %
on average (relative latency ~0.44), with actual baseline latencies in
the hundreds-to-~2000-cycle range.
"""

from repro.experiments.figures import fig06_demand_latency_no_inval
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig06_demand_latency(benchmark, runner):
    series = run_once(benchmark, fig06_demand_latency_no_inval, runner)
    show(
        "Fig. 6 — demand miss latency without invalidations (relative + cycles)",
        series,
        paper_note="average reduction 55.8% (relative ~0.44)",
    )
    rel = series["relative_latency"]
    # Removing invalidation contention never helps by accident only:
    # on average demand misses get faster.
    assert mean(list(rel.values())) < 1.0
    # Sharing-heavy applications see a real reduction.
    assert rel["PR"] < 0.97
    # Actual cycle counts are in a plausible hardware range.
    for cycles in series["baseline_cycles"].values():
        assert 100 < cycles < 50000
