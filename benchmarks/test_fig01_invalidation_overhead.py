"""Fig. 1: fraction of execution time spent handling PTE invalidations
(2-GPU system, hardware-study subset MT MM PR ST SC KM).

Paper: average ~42 %, with high-sharing apps (PR, ST) highest.  Our
trace-driven substitute measures the fraction of execution time during
which at least one invalidation request is being handled by a GMMU.
The absolute level is attenuated at trace scale; the property that the
overhead is substantial for sharing-heavy apps and small for low-sharing
ones must hold.
"""

from repro.experiments.figures import fig01_invalidation_overhead
from repro.workloads.suite import FIG1_APPS

from conftest import run_once, series_mean, show


def test_fig01_invalidation_overhead(benchmark, runner):
    series = run_once(benchmark, fig01_invalidation_overhead, runner)
    show(
        "Fig. 1 — invalidation handling time / execution time (2 GPUs)",
        series,
        apps=FIG1_APPS,
        paper_note="average ~42% of execution time",
    )
    overhead = series["invalidation_overhead"]
    assert all(0.0 <= v < 1.0 for v in overhead.values())
    # Invalidation handling is a visible fraction of time on average.
    assert series_mean(overhead) > 0.01
    # Sharing-heavy PR spends more time on invalidations than SC.
    assert overhead["PR"] > overhead["SC"]
