"""Fig. 14: total page-migration waiting latency under IDYLL, relative
to the baseline.

Paper: ~71 % reduction — IDYLL only needs the host-side walk plus IRMB
registration, no GPU page-table walks, before the transfer can start.
"""

from repro.experiments.figures import fig14_migration_waiting_idyll
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig14_migration_waiting(benchmark, runner):
    series = run_once(benchmark, fig14_migration_waiting_idyll, runner)
    show(
        "Fig. 14 — migration waiting latency, IDYLL / baseline",
        series,
        paper_note="average relative waiting ~0.29 (71% reduction)",
    )
    rel = [v for a, v in series["relative_waiting"].items() if v > 0]
    assert rel, "no migrations occurred"
    # IDYLL acks shootdowns from the IRMB: waiting drops on average.
    assert mean(rel) < 1.0
    # Migration-heavy applications see a decisive cut.
    assert series["relative_waiting"]["PR"] < 0.75
    assert series["relative_waiting"]["KM"] < 0.75
