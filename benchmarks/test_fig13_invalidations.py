"""Fig. 13: number and total latency of invalidation requests under
IDYLL, relative to the baseline.

Paper: the in-PTE directory removes the unnecessary ~32 % of requests
(relative count ~0.68) and batching cuts total invalidation latency by
~68.2 % (relative latency ~0.32).
"""

from repro.experiments.figures import fig13_invalidation_requests
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig13_invalidations(benchmark, runner):
    series = run_once(benchmark, fig13_invalidation_requests, runner)
    show(
        "Fig. 13 — invalidation requests, IDYLL / baseline",
        series,
        paper_note="relative count ~0.68; relative total latency ~0.32",
    )
    counts = [v for a, v in series["relative_count"].items()]
    latencies = [v for a, v in series["relative_latency"].items()]

    # The directory filters unnecessary requests: fewer are sent.
    assert mean(counts) < 1.0
    # Lazy batching plus filtering cuts total invalidation-walk latency
    # even further than the count reduction.
    assert mean(latencies) < mean(counts) + 0.05
    assert mean(latencies) < 0.9
