"""Table 3: application list with measured L2-TLB MPKI.

The paper reports the MPKI of each application's real multi-GPU run;
we report the MPKI our calibrated synthetic traces produce.  Absolute
values differ (our traces are scaled down); the *ranking* of
translation intensity is what the reproduction preserves.
"""

from repro.experiments.figures import table3_mpki
from repro.workloads.suite import APPS

from conftest import run_once, show


def test_table3_mpki(benchmark, runner):
    series = run_once(benchmark, table3_mpki, runner)
    show("Table 3 — L2 TLB MPKI (measured vs paper)", series)

    measured = series["measured"]
    paper = series["paper"]
    # Every application produces TLB pressure.
    assert all(m > 0 for m in measured.values())
    # The extremes of the paper's ranking hold: MT most intensive,
    # BS least intensive.
    assert measured["MT"] == max(measured.values())
    assert measured["BS"] == min(measured.values())
    # High-MPKI apps in the paper stay high here (above the suite median).
    median = sorted(measured.values())[len(measured) // 2]
    for app in ("MT", "PR", "KM"):
        assert measured[app] >= median, (app, measured)
    assert paper == {a: APPS[a].paper_mpki for a in paper}
