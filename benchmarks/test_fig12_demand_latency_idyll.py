"""Fig. 12: total demand TLB miss latency under IDYLL, relative to the
baseline (lower is better).

Paper: ~60 % reduction on average; PR and IM drop to ~25 % of baseline.
"""

from repro.experiments.figures import fig12_demand_latency_idyll
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig12_demand_latency_idyll(benchmark, runner):
    series = run_once(benchmark, fig12_demand_latency_idyll, runner)
    show(
        "Fig. 12 — demand TLB miss total latency, IDYLL / baseline",
        series,
        paper_note="average relative latency ~0.40 (60% reduction)",
    )
    rel = series["relative_latency"]
    # IDYLL reduces total demand miss latency on average.
    assert mean(list(rel.values())) < 1.0
    # The biggest overall winners see the biggest latency cuts.
    assert rel["PR"] < 0.9
    assert rel["IM"] < 0.9
    # Reductions translate to (not exceed) plausible bounds.
    assert all(v > 0.05 for v in rel.values())
