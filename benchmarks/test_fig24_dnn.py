"""Fig. 24: IDYLL on real DNN workloads — layer-parallel VGG16 and
ResNet18 training (Tiny-ImageNet-scale, shrunk traces).

Paper: +15.9 % (VGG16) and +12.0 % (ResNet18) — boundary-activation and
weight sharing cause the migrations IDYLL optimises, though far fewer
than the kernel suite.
"""

from repro.experiments.figures import fig24_dnn

from conftest import run_once, show


def test_fig24_dnn(benchmark, runner):
    series = run_once(benchmark, fig24_dnn, runner)
    show(
        "Fig. 24 — IDYLL on DNN training",
        series,
        apps=["VGG16", "ResNet18"],
        paper_note="+15.9% VGG16, +12.0% ResNet18",
    )
    # DNN sharing is milder than the kernel suite: modest but non-
    # negative improvements.
    assert series["idyll"]["VGG16"] > 0.97
    assert series["idyll"]["ResNet18"] > 0.97
