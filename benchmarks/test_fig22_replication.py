"""Fig. 22: IDYLL (with counter migration) normalised to page
replication.

Paper: +25.0 % on average.  Replication nearly eliminates invalidations
for read-intensive apps (PR, ST, SC — small IDYLL edge there), but
write collapses make it lose on write-intensive IM and C2D.
"""

from repro.experiments.figures import fig22_page_replication
from repro.metrics.report import mean

from conftest import run_once, series_mean, show


def test_fig22_replication(benchmark, runner):
    series = run_once(benchmark, fig22_page_replication, runner)
    show(
        "Fig. 22 — IDYLL relative to page replication",
        series,
        paper_note="avg +25%; biggest wins on write-intensive IM / C2D",
    )
    rel = series["idyll_vs_replication"]
    # Replication is a strong comparator.  KNOWN SCALE ARTIFACT (see
    # EXPERIMENTS.md): at the scaled-down counter threshold, migrations
    # amortise over few accesses, so the migration-free replication
    # policy is stronger here than in the paper and IDYLL's +25% average
    # edge is not reproduced.  What does hold: IDYLL stays competitive
    # everywhere (no collapse), and for the read-intensive apps the two
    # approaches are close (paper: "less room for optimization" there).
    assert all(v > 0.5 for v in rel.values())
    assert mean(list(rel.values())) > 0.8
    read_heavy = mean([rel["PR"], rel["ST"], rel["SC"]])
    assert read_heavy > 0.8
