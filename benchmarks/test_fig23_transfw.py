"""Fig. 23: comparison and combination with Trans-FW (HPCA'23).

Paper: Trans-FW alone +30 %; IDYLL +69.9 %; IDYLL+Trans-FW +86.3 % —
they are complementary (Trans-FW expedites far faults, IDYLL removes
invalidation contention), though not fully orthogonal.
"""

from repro.experiments.figures import fig23_transfw

from conftest import run_once, series_mean, show


def test_fig23_transfw(benchmark, runner):
    series = run_once(benchmark, fig23_transfw, runner)
    show(
        "Fig. 23 — Trans-FW / IDYLL / IDYLL+Trans-FW vs baseline",
        series,
        paper_note="avg: Trans-FW 1.30, IDYLL 1.70, combined 1.86",
    )
    transfw = series_mean(series["trans_fw"])
    idyll = series_mean(series["idyll"])
    combined = series_mean(series["idyll_trans_fw"])

    # Trans-FW alone helps (it shortcuts far faults)...
    assert transfw > 0.99
    # ...but IDYLL, which attacks invalidations, helps more.
    assert idyll > transfw - 0.02
    # Combining them is at least as good as IDYLL alone.
    assert combined >= idyll - 0.03
