"""Fig. 7: page-migration waiting latency as a share of total migration
latency (baseline).

Paper: waiting (request-to-transfer-start, dominated by invalidation
acks) is ~38.3 % of migration latency — ~854 of ~2230 cycles.
"""

from repro.experiments.figures import fig07_migration_waiting_share
from repro.metrics.report import mean

from conftest import run_once, show


def test_fig07_migration_waiting(benchmark, runner):
    series = run_once(benchmark, fig07_migration_waiting_share, runner)
    show(
        "Fig. 7 — migration waiting share and actual cycles",
        series,
        paper_note="waiting ~38.3% of migration latency (854 / 2230 cycles)",
    )
    shares = [v for v in series["waiting_share"].values() if v > 0]
    assert shares, "no application migrated at all"
    # Waiting is a substantial fraction of migration latency, but not all.
    assert 0.1 < mean(shares) < 0.95
    # Actual cycle magnitudes are in the paper's ballpark (hundreds to
    # thousands of cycles).
    migrating = [a for a, v in series["migration_cycles"].items() if v > 0]
    for app in migrating:
        assert 200 < series["migration_cycles"][app] < 100000
        assert series["waiting_cycles"][app] < series["migration_cycles"][app]
