"""Fig. 11: the headline result — Only-Lazy, Only-In-PTE, IDYLL-InMem,
IDYLL, and zero-latency invalidation, normalised to the baseline.

Paper averages: Only-In-PTE +27.3 %, Only-Lazy +55.8 %, IDYLL +69.9 %,
IDYLL-InMem ~+70 %, zero-latency ~+73 %; PR peaks at 2.67x.

Reproduced shape (attenuated magnitudes, see EXPERIMENTS.md): IDYLL
beats the baseline and beats-or-matches each mechanism alone; zero-
latency is the rough ceiling; IDYLL-InMem tracks IDYLL; sharing-heavy
apps (PR, KM, IM, MM, MT) gain the most.
"""

from repro.experiments.figures import fig11_overall_performance
from repro.metrics.report import mean

from conftest import run_once, series_mean, show


def test_fig11_overall(benchmark, runner):
    series = run_once(benchmark, fig11_overall_performance, runner)
    show(
        "Fig. 11 — normalised performance vs baseline",
        series,
        paper_note="avg: in-PTE 1.27, lazy 1.56, InMem 1.70, IDYLL 1.70, zero 1.73",
    )
    idyll = series_mean(series["idyll"])
    lazy = series_mean(series["only_lazy"])
    in_pte = series_mean(series["only_in_pte"])
    inmem = series_mean(series["idyll_inmem"])
    zero = series_mean(series["zero_latency"])

    # IDYLL improves on the baseline on average...
    assert idyll > 1.03
    # ...and on every sharing-heavy application individually.
    for app in ("PR", "KM", "IM"):
        assert series["idyll"][app] > 1.05, (app, series["idyll"])
    # IDYLL combines the two mechanisms: at least as good as each alone.
    assert idyll >= lazy - 0.02
    assert idyll >= in_pte - 0.02
    # Zero-latency invalidation is the (approximate) ceiling.
    assert zero >= idyll - 0.05
    # The in-memory directory variant tracks the in-PTE design (§7.1).
    assert abs(inmem - idyll) < 0.15
    # PR is among the biggest winners (paper: 2.67x, the suite maximum).
    assert series["idyll"]["PR"] >= max(
        v for a, v in series["idyll"].items() if a != "PR"
    ) - 0.12
