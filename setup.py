"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-660 editable
installs (which must build a wheel) fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
