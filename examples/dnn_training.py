#!/usr/bin/env python3
"""Layer-parallel DNN training on a multi-GPU system (the paper's §7.6).

Builds VGG16 and ResNet18 traces (layer-parallel across 4 GPUs, real
layer shapes, Tiny-ImageNet 200-class head), then measures how IDYLL
affects the boundary-activation / weight-sharing migration traffic.

Run:  python examples/dnn_training.py
"""

from repro import (
    InvalidationScheme,
    MultiGPUSystem,
    baseline_config,
    build_dnn_workload,
)
from repro.workloads.dnn import DNN_MODELS


def main() -> None:
    base_cfg = baseline_config(num_gpus=4)
    idyll_cfg = base_cfg.with_scheme(InvalidationScheme.IDYLL)

    for model, layers in sorted(DNN_MODELS.items()):
        workload = build_dnn_workload(model, num_gpus=4, lanes=4, accesses_per_lane=800)
        print(f"{model}: {len(layers)} layers, "
              f"{workload.footprint_pages():,} pages, "
              f"{workload.shared_access_fraction():.0%} of accesses shared")

        baseline = MultiGPUSystem(base_cfg).run(workload)
        idyll = MultiGPUSystem(idyll_cfg).run(workload)
        print(f"  baseline : {baseline.exec_time:>10,} cycles "
              f"({baseline.migrations} migrations, "
              f"{baseline.invalidations_sent} invalidations)")
        print(f"  IDYLL    : {idyll.exec_time:>10,} cycles "
              f"-> {idyll.speedup_over(baseline):.2f}x")
        paper = {"VGG16": 1.159, "ResNet18": 1.120}[model]
        print(f"  paper    : {paper:.3f}x on full-scale MGPUSim\n")


if __name__ == "__main__":
    main()
