#!/usr/bin/env python
"""Distributed-sweep drill (the CI ``distributed-sweep`` job).

Acceptance drill for the sweep fabric:

1. run a figure-style grid serially → reference bytes;
2. run it on a two-"host" fleet (``local:2,local:2``) with the whole
   grid deliberately sharded onto host 0, so host 1 must work-steal the
   straggler's backlog — assert steals happened and the results are
   byte-equal to serial;
3. run it again on a fresh cache and SIGKILL one host agent while it
   has a task on a worker — assert the coordinator declares the host
   dead, re-dispatches, and still matches serial byte-for-byte;
4. resume over the surviving journal family + shared cache — assert
   nothing is recomputed (every task is a cache hit) and the bytes
   still match.

Run it directly::

    python examples/fabric_drill.py

It exits 0 only if every fleet execution is byte-equal to serial.
"""

import json
import os
import signal
import sys
import tempfile
import threading
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import InvalidationScheme, baseline_config  # noqa: E402
from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.fabric import FabricRunner  # noqa: E402
from repro.experiments.runner import ExperimentRunner  # noqa: E402

SIZES = dict(lanes=2, accesses_per_lane=120, seed=7)
HOSTS = ["local:2", "local:2"]

GRID = [
    (app, baseline_config(2).with_scheme(scheme))
    for app in ("PR", "SC", "KM")
    for scheme in (InvalidationScheme.BROADCAST, InvalidationScheme.IDYLL)
]


def result_bytes(results) -> bytes:
    return json.dumps(
        [asdict(r) for r in results], sort_keys=True
    ).encode()


def main() -> int:
    serial = ExperimentRunner(**SIZES)
    want = result_bytes([serial.run(app, config) for app, config in GRID])
    print(f"reference: {len(GRID)} task(s) serial")

    with tempfile.TemporaryDirectory(prefix="fabric-drill-") as tmp:
        tmp = Path(tmp)

        # 1. Straggler drill: everything lands on host 0; host 1 is
        # idle from the first tick and must steal to contribute.
        steal_runner = FabricRunner(
            HOSTS,
            cache=ResultCache(tmp / "steal"),
            fabric_opts=dict(shard_fn=lambda keys, workers: [list(keys), []]),
            **SIZES,
        )
        got = result_bytes(steal_runner.run_many(GRID, sweep_name="drill"))
        fabric = steal_runner.last_fabric
        assert got == want, "steal-drill fleet diverged from serial"
        assert fabric.stolen_tasks >= 1, "idle host never stole the backlog"
        print(f"steal drill: {fabric.steals} steal(s), "
              f"{fabric.stolen_tasks} task(s) moved; bytes match serial")

        # 2. Host-death drill: SIGKILL an agent that has a running task.
        death_cache = ResultCache(tmp / "death")
        death_runner = FabricRunner(HOSTS, cache=death_cache, **SIZES)
        killed = []

        def saboteur():
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                coordinator = death_runner._fabric
                if coordinator is not None:
                    for host in list(coordinator._hosts.values()):
                        proc = getattr(host.channel, "proc", None)
                        if proc is None or not host.started:
                            continue
                        os.kill(proc.pid, signal.SIGKILL)
                        killed.append(host.host_id)
                        return
                time.sleep(0.01)

        thread = threading.Thread(target=saboteur, daemon=True)
        thread.start()
        got = result_bytes(death_runner.run_many(GRID, sweep_name="drill"))
        thread.join(timeout=120)
        fabric = death_runner.last_fabric
        assert killed, "saboteur never found a host with a running task"
        assert fabric.host_deaths == 1, "coordinator missed the host death"
        assert got == want, "death-drill fleet diverged from serial"
        print(f"death drill: SIGKILLed host {killed[0]}, "
              f"{fabric.redispatched} task(s) re-dispatched; "
              f"bytes match serial")

        # 3. Resume: the journal family + cache already hold everything.
        resume_runner = FabricRunner(
            HOSTS, cache=ResultCache(tmp / "death"), **SIZES
        )
        got = result_bytes(
            resume_runner.run_many(GRID, sweep_name="drill", resume=True)
        )
        assert got == want, "resumed sweep diverged from serial"
        assert resume_runner.cache.hits >= len(GRID), (
            "resume recomputed finished tasks"
        )
        print(f"resume: {resume_runner.cache.hits} cache hit(s), "
              f"0 recomputations; bytes match serial")

    print("fabric drill passed: distributed == serial, byte-for-byte")
    return 0


if __name__ == "__main__":
    sys.exit(main())
