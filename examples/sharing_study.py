#!/usr/bin/env python3
"""Characterisation study (the paper's §5): page sharing, walker request
mix, and migration-waiting breakdown for the full application suite.

This reproduces the paper's Figs. 4, 5 and 7 in one pass, using the
shared experiment runner so each (app, config) is simulated once.

Run:  python examples/sharing_study.py            # default scale
      REPRO_ACCESSES=600 python examples/sharing_study.py   # faster
"""

from repro.experiments import (
    fig04_page_sharing,
    fig05_walker_request_mix,
    fig07_migration_waiting_share,
)
from repro.experiments.runner import ExperimentRunner
from repro.metrics.report import format_series
from repro.workloads.suite import APP_ORDER


def main() -> None:
    runner = ExperimentRunner()

    sharing = fig04_page_sharing(runner)
    print(format_series(
        "Fig. 4 — fraction of accesses to pages shared by k GPUs",
        sharing, APP_ORDER,
    ))
    print()

    mix = fig05_walker_request_mix(runner)
    print(format_series(
        "Fig. 5 — page-walker request mix (demand vs invalidations)",
        mix, APP_ORDER,
    ))
    inval_share = [
        mix["necessary_inval"][a] + mix["unnecessary_inval"][a] for a in APP_ORDER
    ]
    print(f"\ninvalidation share of walker requests: avg "
          f"{sum(inval_share) / len(inval_share):.1%} (paper: 27.2%)")
    unnecessary = [
        mix["unnecessary_inval"][a]
        / max(1e-9, mix["necessary_inval"][a] + mix["unnecessary_inval"][a])
        for a in APP_ORDER
        if mix["necessary_inval"][a] + mix["unnecessary_inval"][a] > 0
    ]
    print(f"unnecessary fraction of invalidations: avg "
          f"{sum(unnecessary) / len(unnecessary):.1%} (paper: 32%)")
    print()

    waiting = fig07_migration_waiting_share(runner)
    print(format_series(
        "Fig. 7 — migration waiting share of migration latency",
        waiting, APP_ORDER,
    ))
    shares = [v for v in waiting["waiting_share"].values() if v > 0]
    if shares:
        print(f"\nwaiting share: avg {sum(shares) / len(shares):.1%} (paper: 38.3%)")


if __name__ == "__main__":
    main()
