#!/usr/bin/env python3
"""Quickstart: build a 4-GPU system, run one workload under the baseline
and under IDYLL, and compare what the paper's §5 metrics show.

Run:  python examples/quickstart.py
"""

from repro import (
    InvalidationScheme,
    MultiGPUSystem,
    baseline_config,
    build_workload,
)


def main() -> None:
    # 1. A workload: PageRank, the paper's sharing-heaviest application.
    #    Traces are synthetic but calibrated to the paper's Table 3
    #    (access pattern, page sharing, MPKI).
    workload = build_workload("PR", num_gpus=4, lanes=4, accesses_per_lane=800)
    print(f"workload: {workload.name}")
    print(f"  accesses     : {workload.total_accesses():,}")
    print(f"  footprint    : {workload.footprint_pages():,} pages")
    dist = workload.sharing_distribution()
    print(f"  page sharing : " + ", ".join(f"{k} GPUs: {v:.0%}" for k, v in dist.items()))

    # 2. The baseline system (Table 2): access-counter migration with
    #    broadcast PTE invalidations.
    base_cfg = baseline_config(num_gpus=4)
    baseline = MultiGPUSystem(base_cfg).run(workload)

    # 3. The same system with IDYLL: in-PTE directory + lazy invalidation.
    idyll_cfg = base_cfg.with_scheme(InvalidationScheme.IDYLL)
    idyll = MultiGPUSystem(idyll_cfg).run(workload)

    # 4. Compare the paper's §5.2 metrics.
    print("\n                         baseline        IDYLL")
    rows = [
        ("execution time (cycles)", baseline.exec_time, idyll.exec_time),
        ("far faults", baseline.far_faults, idyll.far_faults),
        ("page migrations", baseline.migrations, idyll.migrations),
        ("invalidations sent", baseline.invalidations_sent, idyll.invalidations_sent),
        ("invalidation walks", baseline.inval_walks, idyll.inval_walks),
        ("demand miss latency", f"{baseline.demand_miss_mean_latency:.0f}",
         f"{idyll.demand_miss_mean_latency:.0f}"),
        ("migration waiting", f"{baseline.migration_waiting_mean:.0f}",
         f"{idyll.migration_waiting_mean:.0f}"),
        ("IRMB bypasses", "-", idyll.irmb_bypasses),
    ]
    for name, b, i in rows:
        print(f"  {name:<24} {str(b):>10}  {str(i):>10}")

    print(f"\nIDYLL speedup over baseline: {idyll.speedup_over(baseline):.2f}x")
    print("(paper, full-scale MGPUSim: 2.67x for PR, 1.699x suite average)")


if __name__ == "__main__":
    main()
