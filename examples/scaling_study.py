#!/usr/bin/env python3
"""Scaling study: how IDYLL's benefit evolves with GPU count (the
paper's §7.2, Figs. 18/19).

Fixes the input size and sweeps 2/4/8 GPUs: more GPUs share the same
pages more intensely, so migrations and invalidations per GPU grow —
which is exactly the regime IDYLL targets.  Also shows the directory-
bit sensitivity (11 vs 4 usable PTE bits).

Run:  python examples/scaling_study.py [APP]      (default: PR)
"""

import sys

from repro import (
    InvalidationScheme,
    MultiGPUSystem,
    baseline_config,
    build_workload,
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "PR"
    print(f"{app}: IDYLL vs baseline while scaling the GPU count\n")
    print(f"  {'GPUs':>4} {'migrations':>11} {'invals/GPU':>11} "
          f"{'IDYLL':>7} {'IDYLL(4 bits)':>14}")

    for num_gpus in (2, 4, 8):
        accesses = 800 if num_gpus <= 4 else 400
        workload = build_workload(
            app, num_gpus=num_gpus, lanes=4, accesses_per_lane=accesses
        )
        base_cfg = baseline_config(num_gpus)
        baseline = MultiGPUSystem(base_cfg).run(workload)

        idyll_cfg = base_cfg.with_scheme(InvalidationScheme.IDYLL)
        idyll = MultiGPUSystem(idyll_cfg).run(workload)
        narrow = MultiGPUSystem(idyll_cfg.with_directory_bits(4)).run(workload)

        invals_per_gpu = baseline.invalidations_sent / num_gpus
        print(
            f"  {num_gpus:>4} {baseline.migrations:>11} {invals_per_gpu:>11.0f} "
            f"{idyll.speedup_over(baseline):>6.2f}x "
            f"{narrow.speedup_over(baseline):>13.2f}x"
        )

    print("\npaper: +69.9% (4 GPUs), +75.3% (8), +79.1% (16); with 4 bits the")
    print("directory aliases more but lazy invalidation keeps the gains.")


if __name__ == "__main__":
    main()
