#!/usr/bin/env python
"""Service drill (the CI ``service-smoke`` job).

Acceptance drill for the hardened job service, run against a real
``repro serve`` process over real HTTP:

1. boot the server on an ephemeral port and wait for ``/readyz``;
2. submit a 4-GPU job and stream its SSE event feed;
3. SIGKILL the backend worker process mid-simulation — the supervisor
   must respawn it and retry the task behind the same job;
4. assert the job completes anyway and its artifact is byte-identical
   to ``repro run --json`` for the same spec;
5. SIGTERM the server — graceful drain must finish in-flight work and
   exit 0.

Run it directly::

    python examples/service_drill.py

It exits 0 only if every step holds.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

JOB = {"app": "KM", "gpus": 4, "lanes": 2, "accesses": 4_000, "seed": 11}

#: every event kind seen on the SSE stream, in arrival order.
STREAMED = []


def say(msg):
    print(f"[drill] {msg}", flush=True)


def request(port, method, path, payload=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    resp = conn.getresponse()
    raw = resp.read()
    conn.close()
    try:
        doc = json.loads(raw)
    except (ValueError, UnicodeDecodeError):
        doc = None
    return resp.status, raw, doc


def stream_events(port, job_id):
    """Read the SSE feed until the server closes it at the terminal
    event, recording event kinds as they arrive."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("GET", f"/jobs/{job_id}/events")
    resp = conn.getresponse()
    assert resp.status == 200, resp.status
    for raw_line in resp:
        line = raw_line.decode().rstrip("\n")
        if line.startswith("event: "):
            STREAMED.append(line[len("event: "):])
    conn.close()


def boot_server(cache_dir):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", "1", "--cache-dir", cache_dir,
            "--drain-timeout", "120",
        ],
        cwd=str(REPO),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    assert match, f"server did not announce its address: {line!r}"
    port = int(match.group(1))
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            status, _, _ = request(port, "GET", "/readyz", timeout=5)
            if status == 200:
                return proc, port
        except OSError:
            pass
        time.sleep(0.2)
    raise AssertionError("server never became ready")


def backend_worker_pids(server_pid):
    """The spawn-context simulation workers: grandchildren-or-children
    of the server whose command line is a multiprocessing spawn_main
    (the resource tracker is excluded by name)."""
    pids = []
    for pid_dir in Path("/proc").iterdir():
        if not pid_dir.name.isdigit():
            continue
        try:
            stat = (pid_dir / "stat").read_text()
            cmdline = (pid_dir / "cmdline").read_bytes().replace(b"\0", b" ")
        except OSError:
            continue
        ppid = int(stat.split(") ", 1)[1].split()[1])
        if ppid != server_pid:
            continue
        if b"spawn_main" in cmdline and b"resource_tracker" not in cmdline:
            pids.append(int(pid_dir.name))
    return pids


def reference_bytes():
    """What the CLI produces for the same spec — the byte oracle."""
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "run", JOB["app"],
            "--gpus", str(JOB["gpus"]), "--lanes", str(JOB["lanes"]),
            "--accesses", str(JOB["accesses"]), "--seed", str(JOB["seed"]),
            "--json", "-",
        ],
        cwd=str(REPO),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        capture_output=True,
        check=True,
    )
    return out.stdout


def main():
    with tempfile.TemporaryDirectory(prefix="service-drill-") as tmp:
        say("booting repro serve on an ephemeral port")
        proc, port = boot_server(os.path.join(tmp, "cache"))
        try:
            status, _, doc = request(port, "POST", "/jobs", JOB)
            assert status == 202, (status, doc)
            job_id = doc["id"]
            say(f"submitted 4-GPU job {job_id}; streaming events")
            streamer = threading.Thread(
                target=stream_events, args=(port, job_id), daemon=True
            )
            streamer.start()

            # Wait for the task to land on a backend worker, then kill it.
            deadline = time.monotonic() + 60
            victim = None
            while time.monotonic() < deadline and victim is None:
                workers = backend_worker_pids(proc.pid)
                if workers:
                    victim = workers[0]
                    break
                time.sleep(0.2)
            assert victim is not None, "no backend worker ever appeared"
            time.sleep(1.0)  # let the simulation get going
            say(f"SIGKILLing backend worker pid={victim}")
            os.kill(victim, signal.SIGKILL)

            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                status, _, doc = request(port, "GET", f"/jobs/{job_id}")
                assert status == 200
                if doc["state"] in ("done", "failed"):
                    break
                time.sleep(0.5)
            assert doc["state"] == "done", f"job ended {doc['state']}: {doc}"
            say("job completed despite the worker kill")

            streamer.join(30)
            assert "retry" in STREAMED, (
                f"worker death never surfaced on the SSE feed: {STREAMED}"
            )
            assert STREAMED and STREAMED[-1] == "done", STREAMED
            say(f"SSE feed closed at the terminal event: {STREAMED}")

            status, blob, _ = request(port, "GET", f"/jobs/{job_id}/artifact")
            assert status == 200
            say("artifact fetched; computing CLI reference bytes")
            assert blob == reference_bytes(), (
                "service artifact is not byte-identical to repro run --json"
            )
            say("artifact is byte-identical to the direct CLI run")

            status, _, _ = request(port, "GET", "/metrics")
            assert status == 200

            say("sending SIGTERM: graceful drain")
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            assert code == 0, f"server exited {code} on graceful drain"
            say("server drained and exited 0")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    say("PASS")


if __name__ == "__main__":
    main()
