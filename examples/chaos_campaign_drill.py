#!/usr/bin/env python
"""Chaos-campaign drill (the CI ``chaos-campaign`` job).

Acceptance drill for crash-safe, trace-driven chaos campaigns:

1. generate a seeded failure trace for a 4-GPU topology;
2. run the campaign uninterrupted, in-process → reference report bytes;
3. run the *same* campaign as a checkpointing subprocess and SIGKILL it
   as soon as a checkpoint lands;
4. resume from a checkpoint taken *mid-episode* (episodes were open at
   its cycle) and assert the finished campaign's report is
   byte-identical to step 2's;
5. assert the report carries non-zero recovery metrics, and leave it on
   disk as the job's artifact.

Run it directly::

    python examples/chaos_campaign_drill.py [artifact.json]

It exits 0 only if the resume happened from a mid-episode checkpoint
and the bytes match.
"""

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import baseline_config  # noqa: E402
from repro.experiments.campaign import (  # noqa: E402
    campaign_config,
    campaign_report,
    run_campaign,
)
from repro.faults.tracegen import generate_trace, save_trace  # noqa: E402

GPUS = 4
# Horizon far beyond the ~60k-cycle workload: the post-retirement drain
# phase is long (and slow enough in wall-clock terms) that the saboteur
# reliably lands its SIGKILL between checkpoints.
TRACE_ARGS = dict(
    num_gpus=GPUS, horizon=600_000, seed=9,
    link_mttf=25_000, gpu_mttf=40_000,
    mean_outage=4_000, mean_degraded=6_000, mean_storm=4_000,
)
RUN = dict(lanes=4, accesses_per_lane=300, seed=7)
CHECKPOINT_EVERY = 2_000


def report_bytes(system, result) -> bytes:
    return json.dumps(
        campaign_report(system, result), indent=2, sort_keys=True
    ).encode()


def main() -> int:
    artifact = Path(sys.argv[1] if len(sys.argv) > 1 else "campaign-report.json")
    spec = generate_trace(**TRACE_ARGS)
    config = campaign_config(baseline_config(GPUS), spec)
    print(f"trace: {len(spec.episodes)} episodes over {spec.horizon} cycles "
          f"(fingerprint {spec.fingerprint})")

    # 1. Reference: the uninterrupted campaign.
    ref_system, ref_result = run_campaign("PR", config, **RUN)
    want = report_bytes(ref_system, ref_result)
    camp = ref_system.chaos.report()
    print(f"reference: exec_time={ref_result.exec_time} "
          f"recovered={camp['episodes_recovered']}/{camp['episodes_run']}")

    with tempfile.TemporaryDirectory(prefix="chaos-drill-") as tmp:
        tmp = Path(tmp)
        trace_path = save_trace(spec, tmp / "fail.jsonl")
        ck_dir = tmp / "ckpt"

        # 2. Victim: same campaign via the CLI, checkpointing; SIGKILL it
        # once checkpoints start landing.
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "chaos", "run", "PR",
             "--trace", str(trace_path), "--gpus", str(GPUS),
             "--lanes", str(RUN["lanes"]),
             "--accesses", str(RUN["accesses_per_lane"]),
             "--seed", str(RUN["seed"]),
             "--checkpoint-every", str(CHECKPOINT_EVERY),
             "--checkpoint-dir", str(ck_dir)],
            cwd=Path(__file__).resolve().parents[1],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if list(ck_dir.glob("ckpt-*.ckpt")):
                break
            if victim.poll() is not None:
                break
            time.sleep(0.002)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            print(f"saboteur: SIGKILLed campaign pid {victim.pid} "
                  f"(returncode {victim.returncode})")
            assert victim.returncode == -signal.SIGKILL
        else:
            # The drain outran the poll loop — the resume checks below
            # still hold, but say so loudly.
            print("saboteur: victim finished before the kill landed "
                  f"(returncode {victim.returncode})")

        ckpts = sorted(ck_dir.glob("ckpt-*.ckpt"))
        assert ckpts, "victim wrote no checkpoints before dying"
        print(f"victim left {len(ckpts)} checkpoint(s), "
              f"last at cycle {int(ckpts[-1].stem.split('-')[1])}")

        # 3. Resume from a mid-episode checkpoint: episodes open at its
        # cycle, so timeline cursor + open recovery records ride in RCKP.
        def open_at(cycle: int):
            return [ep.eid for ep in spec.episodes
                    if ep.start <= cycle < ep.end]

        mid = [p for p in ckpts if open_at(int(p.stem.split("-")[1]))]
        assert mid, "no checkpoint landed mid-episode"
        chosen = mid[-1]
        cycle = int(chosen.stem.split("-")[1])
        print(f"resuming {chosen.name} (episodes {open_at(cycle)} open)")
        rs_system, rs_result = run_campaign(
            "PR", config, **RUN, resume_from=str(chosen)
        )
        got = report_bytes(rs_system, rs_result)
        assert got == want, "resumed campaign report diverged from reference"
        print("resumed report is byte-identical to the reference")

    # 4. Recovery metrics must be non-trivial.
    report = campaign_report(rs_system, rs_result)
    camp = report["campaign"]
    assert not report["aborted"], report["abort_reason"]
    assert camp["episodes_recovered"] > 0
    assert camp["time_to_recover_max"] > 0
    assert camp["faults_injected"] > 0
    assert report["links"], "no per-link attribution"
    artifact.write_bytes(want + b"\n")
    print(f"recovery: {camp['episodes_recovered']} episode(s) recovered, "
          f"mean ttr {camp['time_to_recover_mean']:.0f}, "
          f"max ttr {camp['time_to_recover_max']}, "
          f"{camp['faults_injected']} chaos faults; report → {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
