#!/usr/bin/env python3
"""Design-space exploration with the public API: sweep the IRMB
geometry and the directory implementation for one application, the way
an architect would size IDYLL for a new chip.

Reproduces the flavour of the paper's Figs. 11 and 15 on a single
workload, and prints the hardware cost of each point from the
analytical area model (§6.3).

Run:  python examples/design_space.py [APP]      (default: KM)
"""

import sys
from dataclasses import replace

from repro import (
    DirectoryKind,
    InvalidationScheme,
    MultiGPUSystem,
    baseline_config,
    build_workload,
)
from repro.config import IRMBConfig
from repro.core.area import irmb_bytes


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "KM"
    workload = build_workload(app, num_gpus=4, lanes=4, accesses_per_lane=800)
    base_cfg = baseline_config(num_gpus=4)
    baseline = MultiGPUSystem(base_cfg).run(workload)
    print(f"{app}: baseline execution time {baseline.exec_time:,} cycles\n")

    print("IRMB geometry sweep (full IDYLL):")
    print(f"  {'(bases, offsets)':<18} {'bytes':>6} {'speedup':>8} {'evictions':>10}")
    for bases, offsets in [(16, 8), (16, 16), (32, 8), (32, 16), (64, 16)]:
        cfg = base_cfg.with_scheme(InvalidationScheme.IDYLL).with_irmb(bases, offsets)
        result = MultiGPUSystem(cfg).run(workload)
        size = irmb_bytes(IRMBConfig(bases=bases, offsets_per_base=offsets))
        marker = "  <- paper default" if (bases, offsets) == (32, 16) else ""
        print(
            f"  ({bases:>3},{offsets:>3})         {size:>6.0f} "
            f"{result.speedup_over(baseline):>8.2f} {result.irmb_evictions:>10}{marker}"
        )

    print("\nDirectory implementation (32x16 IRMB):")
    for kind in DirectoryKind:
        cfg = replace(
            base_cfg.with_scheme(InvalidationScheme.IDYLL), directory_kind=kind
        )
        result = MultiGPUSystem(cfg).run(workload)
        extra = ""
        if kind is DirectoryKind.IN_MEMORY:
            extra = f"  (VM-Cache hit rate {result.vm_cache_hit_rate:.0%})"
        print(f"  {kind.value:<12} speedup {result.speedup_over(baseline):.2f}{extra}")


if __name__ == "__main__":
    main()
