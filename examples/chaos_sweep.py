#!/usr/bin/env python
"""Chaos drill for the supervised sweep runner (the CI ``chaos`` job).

Scenario — the acceptance drill for crash-safe sweep execution:

1. run a 4-GPU sweep to completion, uninterrupted → reference results;
2. run the *same* sweep in a subprocess against a fresh cache while a
   saboteur thread SIGKILLs one worker mid-task and then SIGINTs the
   supervisor itself mid-flight (graceful drain, exit via
   :class:`~repro.experiments.parallel.SweepInterrupted`);
3. resume the interrupted sweep from its journal + result cache;
4. assert the resumed sweep's results are byte-identical to step 1's.

Run it directly::

    python examples/chaos_sweep.py

It exits 0 only if the interruption landed, the resume completed, and
the bytes match.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import InvalidationScheme, baseline_config  # noqa: E402
from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.parallel import (  # noqa: E402
    ParallelRunner,
    SweepInterrupted,
)

SIZES = dict(lanes=2, accesses_per_lane=150, seed=7)


def grid():
    base = baseline_config(4)
    return [
        ("PR", base),
        ("PR", base.with_scheme(InvalidationScheme.IDYLL)),
        ("SC", base),
        ("SC", base.with_scheme(InvalidationScheme.LAZY)),
        ("BS", base.with_scheme(InvalidationScheme.IDYLL)),
    ]


def results_blob(results) -> bytes:
    return json.dumps([asdict(r) for r in results], sort_keys=True).encode()


def run_victim(cache_dir: str) -> None:
    """Child mode: run the sweep and sabotage it from within."""
    runner = ParallelRunner(
        jobs=2, cache=ResultCache(cache_dir), drain_timeout=0.5, **SIZES
    )

    def sabotage():
        deadline = time.monotonic() + 120
        # First strike: SIGKILL one busy worker outright.
        while time.monotonic() < deadline:
            supervisor = runner._supervisor
            if supervisor is not None:
                busy = [
                    w for w in supervisor._workers.values()
                    if w.task_key is not None and w.proc.is_alive()
                ]
                if busy:
                    os.kill(busy[0].proc.pid, signal.SIGKILL)
                    print(
                        f"victim: SIGKILLed worker {busy[0].proc.pid}",
                        file=sys.stderr,
                    )
                    break
            time.sleep(0.01)
        # Second strike: ^C the supervisor while work is in flight.
        while time.monotonic() < deadline:
            supervisor = runner._supervisor
            if supervisor is not None and any(
                w.task_key is not None for w in supervisor._workers.values()
            ):
                print("victim: SIGINTing the supervisor", file=sys.stderr)
                os.kill(os.getpid(), signal.SIGINT)
                return
            time.sleep(0.01)

    threading.Thread(target=sabotage, daemon=True).start()
    try:
        runner.run_many(grid(), sweep_name="chaos")
    except SweepInterrupted as exc:
        print(f"victim: interrupted as planned: {exc}", file=sys.stderr)
        sys.exit(130)
    # The sweep must actually be interrupted for the drill to count.
    print("victim: sweep finished before the sabotage landed", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        # 1. Reference: uninterrupted supervised sweep.
        print("chaos: running the uninterrupted reference sweep ...")
        reference_runner = ParallelRunner(
            jobs=2, cache=ResultCache(workdir / "reference-cache"), **SIZES
        )
        reference = results_blob(
            reference_runner.run_many(grid(), sweep_name="chaos")
        )

        # 2. Victim: same sweep, SIGKILL a worker + SIGINT the
        #    supervisor mid-flight, in its own interpreter.
        print("chaos: running the sabotaged sweep ...")
        victim_cache = workdir / "victim-cache"
        proc = subprocess.run(
            [sys.executable, __file__, "--victim", str(victim_cache)],
            timeout=600,
        )
        if proc.returncode != 130:
            print(
                f"chaos: FAIL — victim exited {proc.returncode}, expected 130"
            )
            return 1
        journal = victim_cache / "journals" / "chaos.jsonl"
        if not journal.exists():
            print("chaos: FAIL — interrupted sweep left no journal")
            return 1
        print(
            f"chaos: victim interrupted; journal has "
            f"{len(journal.read_text().splitlines())} record(s)"
        )

        # 3. Resume from journal + cache in this process.
        print("chaos: resuming the interrupted sweep ...")
        resumed_runner = ParallelRunner(
            jobs=2, cache=ResultCache(victim_cache), **SIZES
        )
        resumed = results_blob(
            resumed_runner.run_many(grid(), sweep_name="chaos", resume=True)
        )
        served_from_cache = resumed_runner.cache.hits
        print(f"chaos: resume served {served_from_cache} run(s) from cache")

        # 4. Byte-equality against the uninterrupted reference.
        if resumed != reference:
            print("chaos: FAIL — resumed results differ from reference")
            return 1
        print("chaos: OK — resumed sweep byte-identical to uninterrupted run")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--victim":
        run_victim(sys.argv[2])
    sys.exit(main())
